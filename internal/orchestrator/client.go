package orchestrator

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/backoff"
	"repro/internal/faultinject"
)

// Client is the worker-side view of the control plane. Every call
// retries transport failures and 5xx responses with seeded-jittered
// exponential backoff; protocol-level rejections (fenced, 4xx) are
// returned immediately — retrying a fenced call can never succeed.
type Client struct {
	// BaseURL is the coordinator address, e.g. "http://127.0.0.1:8377".
	BaseURL string
	// HTTP is the transport; nil selects a client with a 10s per-attempt
	// timeout.
	HTTP *http.Client
	// Retry shapes the per-call retry schedule. Zero value selects
	// 100ms..5s with 0.5 jitter seeded from the worker name.
	Retry backoff.Policy
	// Attempts bounds tries per call. Default 5.
	Attempts int
	// Sleep replaces time.Sleep between retries (tests stub it).
	Sleep func(time.Duration)
	// Logf, when non-nil, receives retry log lines.
	Logf func(format string, args ...any)
}

// NewClient returns a client for the coordinator at baseURL with the
// retry stream seeded from the worker identity, so a fleet's retry
// schedules decorrelate deterministically.
func NewClient(baseURL, worker string) *Client {
	h := fnv.New64a()
	_, _ = h.Write([]byte(worker))
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 10 * time.Second},
		Retry: backoff.Policy{
			Base: 100 * time.Millisecond, Max: 5 * time.Second,
			Jitter: 0.5, Seed: int64(h.Sum64()),
		},
		Attempts: 5,
	}
}

// transientError marks a failure worth retrying (network error, 5xx, or
// a 429 shed). A 429's Retry-After header rides along as hint; the retry
// loop stretches its backoff to honor it.
type transientError struct {
	err  error
	hint time.Duration
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Register announces the worker.
func (c *Client) Register(req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := c.call(PathRegister, req, &resp)
	return resp, err
}

// Lease requests a work unit.
func (c *Client) Lease(req LeaseRequest) (LeaseResponse, error) {
	var resp LeaseResponse
	err := c.call(PathLease, req, &resp)
	return resp, err
}

// Heartbeat keeps a lease alive.
func (c *Client) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.call(PathHeartbeat, req, &resp)
	return resp, err
}

// Result submits a completed unit.
func (c *Client) Result(req ResultRequest) (ResultResponse, error) {
	var resp ResultResponse
	err := c.call(PathResult, req, &resp)
	return resp, err
}

// Status fetches one campaign's lease-table snapshot. An empty campaign
// resolves to the only campaign when exactly one exists.
func (c *Client) Status(campaign string) (StatusResponse, error) {
	var resp StatusResponse
	err := c.call(PathStatus, StatusRequest{Campaign: campaign}, &resp)
	return resp, err
}

// Submit submits a new campaign.
func (c *Client) Submit(req SubmitRequest) (SubmitResponse, error) {
	var resp SubmitResponse
	err := c.call(PathSubmit, req, &resp)
	return resp, err
}

// Campaigns lists the campaign registry.
func (c *Client) Campaigns(req ListRequest) (ListResponse, error) {
	var resp ListResponse
	err := c.call(PathList, req, &resp)
	return resp, err
}

// StopCampaign stops one campaign (no new leases; in-flight units
// resolve; the campaign completes with partial results).
func (c *Client) StopCampaign(req StopRequest) (StopResponse, error) {
	var resp StopResponse
	err := c.call(PathStop, req, &resp)
	return resp, err
}

// Drain asks the whole coordinator to drain and exit cleanly.
func (c *Client) Drain(req DrainRequest) (DrainResponse, error) {
	var resp DrainResponse
	err := c.call(PathDrain, req, &resp)
	return resp, err
}

func (c *Client) attempts() int {
	if c.Attempts <= 0 {
		return 5
	}
	return c.Attempts
}

func (c *Client) http() *http.Client {
	if c.HTTP == nil {
		c.HTTP = &http.Client{Timeout: 10 * time.Second}
	}
	return c.HTTP
}

// call POSTs req as JSON and decodes the response into resp, retrying
// transient failures with the client's backoff schedule.
func (c *Client) call(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("orchestrator: client: encode %s: %w", path, err)
	}
	return c.retry(path, func() error {
		return c.attemptOnce(path, body, resp)
	})
}

// retry runs one attempt function under the client's backoff schedule.
// Only *transientError (network failure, 5xx, 429 shed) is retried; a
// hard error — a protocol rejection — aborts immediately, because
// retrying it can never succeed. A 429's Retry-After hint stretches the
// next delay through Policy.DelayWithHint: the fleet still spreads over
// the jitter envelope, but never comes back before the server asked.
func (c *Client) retry(path string, attemptFn func() error) error {
	var last *transientError
	for n := 1; n <= c.attempts(); n++ {
		err := attemptFn()
		if err == nil {
			return nil
		}
		te, transient := err.(*transientError)
		if !transient {
			return err
		}
		last = te
		if n == c.attempts() {
			break
		}
		d := c.Retry.DelayWithHint(n, te.hint)
		if c.Logf != nil {
			c.Logf("call %s attempt %d failed (retrying in %v): %v", path, n, d, err)
		}
		c.sleep(d)
	}
	return last.err
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// attemptOnce is one POST round-trip. The "orch.client" fault point lets
// tests fail attempts deterministically before any network I/O.
func (c *Client) attemptOnce(path string, body []byte, resp any) error {
	if err := faultinject.FireErr("orch.client"); err != nil {
		return &transientError{err: err}
	}
	httpResp, err := c.http().Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return &transientError{err: err}
	}
	return decodeResponse(httpResp, resp)
}

// decodeResponse maps an HTTP response onto the caller's struct. 5xx is
// transient (retry); 429 is transient carrying the server's Retry-After
// hint (shed load clears on its own — the right reaction is a longer
// wait, not a failure); anything else non-200 is a hard protocol error.
func decodeResponse(httpResp *http.Response, resp any) error {
	defer httpResp.Body.Close()
	if httpResp.StatusCode == http.StatusTooManyRequests {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		var hint time.Duration
		if secs, err := strconv.Atoi(httpResp.Header.Get("Retry-After")); err == nil && secs > 0 {
			hint = time.Duration(secs) * time.Second
		}
		return &transientError{
			err:  fmt.Errorf("orchestrator: coordinator shed load (429): %s", bytes.TrimSpace(msg)),
			hint: hint,
		}
	}
	if httpResp.StatusCode >= 500 {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return &transientError{err: fmt.Errorf("orchestrator: server error %d: %s", httpResp.StatusCode, bytes.TrimSpace(msg))}
	}
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return fmt.Errorf("orchestrator: coordinator rejected call (%d): %s", httpResp.StatusCode, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
		return &transientError{err: fmt.Errorf("orchestrator: decode response: %w", err)}
	}
	return nil
}
