package orchestrator

import (
	"errors"
	"fmt"
)

// Admission control errors. The server maps them onto HTTP statuses:
// ErrUnauthorized → 401 (hard — retrying a bad token cannot succeed),
// ErrQuotaExceeded and ErrOverloaded → 429 with a Retry-After hint the
// client's backoff honors (both clear on their own: campaigns finish,
// load subsides), ErrDraining → 503 (this process is going away; a
// bounded retry fails fast and the caller resubmits elsewhere).
var (
	ErrUnauthorized  = errors.New("orchestrator: unauthorized")
	ErrQuotaExceeded = errors.New("orchestrator: client quota exceeded")
	ErrOverloaded    = errors.New("orchestrator: coordinator overloaded")
	ErrDraining      = errors.New("orchestrator: coordinator draining")
	// ErrCampaignFault reports a recovered panic in one campaign's
	// machinery. It maps to a 500 — transient from the caller's view: a
	// one-off panic is consumed by the campaign's strike counter, and a
	// retried call either succeeds or finds the campaign Failed (fenced).
	ErrCampaignFault = errors.New("orchestrator: campaign machinery fault")
)

// ClientQuota names one authenticated client and bounds what it may ask
// of the service.
type ClientQuota struct {
	// Token is the bearer secret presented on submissions.
	Token string
	// Name identifies the client in campaign ownership records.
	Name string
	// MaxCampaigns bounds the client's concurrent non-terminal
	// campaigns; 0 means unlimited.
	MaxCampaigns int
	// MaxIters caps a single campaign's iteration budget; 0 means
	// unlimited. Exceeding it is a hard rejection, not a 429 — waiting
	// cannot make an oversized campaign fit.
	MaxIters int
}

// AuthTable authenticates submission tokens. A nil *AuthTable means
// open access: every caller is the anonymous client with no limits.
type AuthTable struct {
	byToken map[string]ClientQuota
}

// NewAuthTable indexes the quota list by token. Duplicate tokens are an
// error — silently letting the last one win would swap a client's
// limits out from under it.
func NewAuthTable(quotas []ClientQuota) (*AuthTable, error) {
	t := &AuthTable{byToken: make(map[string]ClientQuota, len(quotas))}
	for _, q := range quotas {
		if q.Token == "" {
			return nil, fmt.Errorf("orchestrator: client %q has an empty token", q.Name)
		}
		if _, dup := t.byToken[q.Token]; dup {
			return nil, fmt.Errorf("orchestrator: duplicate auth token for client %q", q.Name)
		}
		if q.Name == "" {
			q.Name = "client-" + abbreviate(q.Token)
		}
		t.byToken[q.Token] = q
	}
	return t, nil
}

// abbreviate keeps token prefixes out of logs while still telling two
// unnamed clients apart.
func abbreviate(tok string) string {
	if len(tok) > 4 {
		return tok[:4]
	}
	return tok
}

// Authorize resolves a token to its client quota. On a nil table every
// token (including none) is the unlimited anonymous client.
func (t *AuthTable) Authorize(token string) (ClientQuota, error) {
	if t == nil {
		return ClientQuota{Name: "anonymous"}, nil
	}
	q, ok := t.byToken[token]
	if !ok {
		return ClientQuota{}, ErrUnauthorized
	}
	return q, nil
}
