package orchestrator

import (
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faultinject"
)

// testSpec is the fixed campaign every test distributes: small enough to
// run in milliseconds, large enough to find real bugs in the simulated
// kernel.
func testSpec() CampaignSpec {
	return CampaignSpec{
		Tool: "bvf", Version: "bpf-next", Sanitize: true,
		Seed: 7, TotalIters: 60, Units: 3, SyncEvery: 20,
	}
}

// fakeClock is an injectable coordinator clock, so lease-expiry tests
// advance time instead of sleeping through real TTLs.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// runUnit executes one unit exactly the way a worker would and returns
// the encoded result payload.
func runUnit(t *testing.T, spec CampaignSpec, u Unit) []byte {
	t.Helper()
	st, err := SpecRunner(spec, u, func(int) {}, func() bool { return false })
	if err != nil {
		t.Fatalf("unit %d run: %v", u.ID, err)
	}
	payload, err := EncodeStats(st)
	if err != nil {
		t.Fatalf("unit %d encode: %v", u.ID, err)
	}
	return payload
}

func newTestCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

// newTestManager builds a one-shot manager (workers are dismissed once
// every campaign is terminal) and submits the given specs, returning the
// assigned campaign IDs in order.
func newTestManager(t *testing.T, cfg ManagerConfig, specs ...CampaignSpec) (*Manager, []string) {
	t.Helper()
	cfg.ExitWhenIdle = true
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	var ids []string
	for i, spec := range specs {
		resp, err := m.Submit(SubmitRequest{Spec: spec})
		if err != nil {
			t.Fatalf("submit campaign %d: %v", i, err)
		}
		ids = append(ids, resp.ID)
	}
	return m, ids
}

func TestSplitUnitsMatchesShardSplit(t *testing.T) {
	for _, tc := range []struct{ total, units int }{
		{60, 3}, {61, 3}, {62, 3}, {7, 4}, {1, 1}, {1000, 7},
	} {
		spec := testSpec()
		spec.TotalIters, spec.Units = tc.total, tc.units
		units := SplitUnits(spec)
		sum := 0
		for i, u := range units {
			// The same arithmetic ParallelCampaign.Run applies per shard.
			want := tc.total / tc.units
			if i < tc.total%tc.units {
				want++
			}
			if u.Quota != want {
				t.Errorf("total=%d units=%d: unit %d quota = %d, want %d", tc.total, tc.units, i, u.Quota, want)
			}
			if u.Seed != spec.Seed+int64(i) {
				t.Errorf("unit %d seed = %d, want %d", i, u.Seed, spec.Seed+int64(i))
			}
			sum += u.Quota
		}
		if sum != tc.total {
			t.Errorf("total=%d units=%d: quotas sum to %d", tc.total, tc.units, sum)
		}
	}
}

// TestLeaseExpiryRefundsFullQuota: a worker that stops heartbeating loses
// its lease at the TTL, and the unit returns to pending with its FULL
// quota — the re-grant carries a fresh epoch so the first holder is
// fenced out.
func TestLeaseExpiryRefundsFullQuota(t *testing.T) {
	clock := newFakeClock()
	c := newTestCoordinator(t, CoordinatorConfig{
		Spec: testSpec(), LeaseTTL: 10 * time.Second, Now: clock.Now,
	})

	first := c.Lease(LeaseRequest{Worker: "a"})
	if first.Status != StatusLease || first.Unit.ID != 0 {
		t.Fatalf("first lease = %+v, want unit 0", first)
	}

	// Heartbeats inside the TTL keep the lease alive.
	clock.Advance(8 * time.Second)
	if hb := c.Heartbeat(HeartbeatRequest{Worker: "a", UnitID: 0, Token: first.Token, Iters: 5}); hb.Status != StatusOK {
		t.Fatalf("in-TTL heartbeat = %q, want ok", hb.Status)
	}

	// Silence past the TTL expires the lease; the next lease call from
	// another worker gets unit 0 back, full quota, new epoch.
	clock.Advance(11 * time.Second)
	second := c.Lease(LeaseRequest{Worker: "b"})
	if second.Status != StatusLease || second.Unit.ID != 0 {
		t.Fatalf("post-expiry lease = %+v, want unit 0 re-granted", second)
	}
	if second.Unit.Quota != first.Unit.Quota {
		t.Fatalf("refunded quota = %d, want full %d", second.Unit.Quota, first.Unit.Quota)
	}
	if second.Token == first.Token {
		t.Fatalf("re-grant reused token %s", second.Token)
	}
	if got := c.Refunds(); got != 1 {
		t.Fatalf("refunds = %d, want 1", got)
	}
}

// TestZombieFenced: the dead-but-not-really worker comes back after its
// lease was re-issued. Its heartbeat and its full, perfectly valid result
// must both be rejected — the unit belongs to the new holder.
func TestZombieFenced(t *testing.T) {
	spec := testSpec()
	clock := newFakeClock()
	c := newTestCoordinator(t, CoordinatorConfig{
		Spec: spec, LeaseTTL: 10 * time.Second, Now: clock.Now,
	})

	zombie := c.Lease(LeaseRequest{Worker: "zombie"})
	clock.Advance(11 * time.Second)
	fresh := c.Lease(LeaseRequest{Worker: "fresh"})
	if fresh.Unit.ID != zombie.Unit.ID {
		t.Fatalf("expected the expired unit re-granted, got %+v", fresh)
	}

	if hb := c.Heartbeat(HeartbeatRequest{Worker: "zombie", UnitID: 0, Token: zombie.Token}); hb.Status != StatusFenced {
		t.Fatalf("zombie heartbeat = %q, want fenced", hb.Status)
	}

	payload := runUnit(t, spec, zombie.Unit)
	rr, err := c.Result(ResultRequest{Worker: "zombie", UnitID: 0, Token: zombie.Token, Stats: payload})
	if err != nil || rr.Status != StatusFenced {
		t.Fatalf("zombie result = (%+v, %v), want fenced", rr, err)
	}
	if got := c.Merged().Iterations; got != 0 {
		t.Fatalf("fenced result leaked %d iterations into the merge", got)
	}

	// The legitimate holder's result is accepted.
	rr, err = c.Result(ResultRequest{Worker: "fresh", UnitID: 0, Token: fresh.Token, Stats: payload})
	if err != nil || rr.Status != StatusAccepted {
		t.Fatalf("fresh result = (%+v, %v), want accepted", rr, err)
	}
	if got, want := c.Merged().Iterations, fresh.Unit.Quota; got != want {
		t.Fatalf("merged iterations = %d, want %d", got, want)
	}
}

// TestDuplicateResultIdempotent: a worker that lost the acknowledgment on
// the wire retries its submission; the coordinator re-acknowledges
// without double-merging.
func TestDuplicateResultIdempotent(t *testing.T) {
	spec := testSpec()
	c := newTestCoordinator(t, CoordinatorConfig{Spec: spec})

	lr := c.Lease(LeaseRequest{Worker: "a"})
	payload := runUnit(t, spec, lr.Unit)
	req := ResultRequest{Worker: "a", UnitID: lr.Unit.ID, Token: lr.Token, Stats: payload}

	for i := 0; i < 3; i++ {
		rr, err := c.Result(req)
		if err != nil || rr.Status != StatusAccepted {
			t.Fatalf("submission %d = (%+v, %v), want accepted", i, rr, err)
		}
	}
	if got, want := c.Merged().Iterations, lr.Unit.Quota; got != want {
		t.Fatalf("merged iterations after duplicates = %d, want %d (merged once)", got, want)
	}

	// A duplicate under a DIFFERENT token (a zombie's copy of the same
	// unit) is fenced, not re-acknowledged.
	bad := req
	bad.Token.Epoch += 40
	rr, err := c.Result(bad)
	if err != nil || rr.Status != StatusFenced {
		t.Fatalf("wrong-token duplicate = (%+v, %v), want fenced", rr, err)
	}
}

// TestResultQuotaMismatchRejected: a result that did not execute exactly
// its quota is a protocol error, not a lease event.
func TestResultQuotaMismatchRejected(t *testing.T) {
	spec := testSpec()
	c := newTestCoordinator(t, CoordinatorConfig{Spec: spec})
	lr := c.Lease(LeaseRequest{Worker: "a"})

	short := core.NewStats(spec.Tool, mustVersion(spec))
	short.Iterations = lr.Unit.Quota - 1
	payload, err := EncodeStats(short)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(ResultRequest{Worker: "a", UnitID: lr.Unit.ID, Token: lr.Token, Stats: payload}); err == nil {
		t.Fatal("short result accepted, want error")
	}
	// The lease survives the bad payload: the same worker can still
	// submit the real thing.
	good := runUnit(t, spec, lr.Unit)
	rr, err := c.Result(ResultRequest{Worker: "a", UnitID: lr.Unit.ID, Token: lr.Token, Stats: good})
	if err != nil || rr.Status != StatusAccepted {
		t.Fatalf("good result after bad payload = (%+v, %v), want accepted", rr, err)
	}
}

// TestCoordinatorRestartFencesOldLeases: the coordinator dies and comes
// back from its checkpoint. Done units stay done, outstanding leases are
// gone (re-leased under a bumped incarnation), and the dead incarnation's
// tokens are fenced everywhere.
func TestCoordinatorRestartFencesOldLeases(t *testing.T) {
	spec := testSpec()
	path := filepath.Join(t.TempDir(), "leases.ckpt")

	c1 := newTestCoordinator(t, CoordinatorConfig{Spec: spec, CheckpointPath: path})
	lr0 := c1.Lease(LeaseRequest{Worker: "a"})
	rr, err := c1.Result(ResultRequest{Worker: "a", UnitID: 0, Token: lr0.Token, Stats: runUnit(t, spec, lr0.Unit)})
	if err != nil || rr.Status != StatusAccepted {
		t.Fatalf("unit 0 = (%+v, %v)", rr, err)
	}
	lr1 := c1.Lease(LeaseRequest{Worker: "a"}) // outstanding when c1 "dies"
	if lr1.Unit.ID != 1 {
		t.Fatalf("second lease = %+v, want unit 1", lr1)
	}

	// Coordinator restarts from the checkpoint.
	c2 := newTestCoordinator(t, CoordinatorConfig{Spec: spec, CheckpointPath: path})
	if got, want := c2.Merged().Iterations, lr0.Unit.Quota; got != want {
		t.Fatalf("restored iterations = %d, want %d", got, want)
	}

	// The pre-crash lease on unit 1 is gone, and its token is from a dead
	// incarnation: fenced on heartbeat and on result.
	if hb := c2.Heartbeat(HeartbeatRequest{Worker: "a", UnitID: 1, Token: lr1.Token}); hb.Status != StatusFenced {
		t.Fatalf("old-incarnation heartbeat = %q, want fenced", hb.Status)
	}
	payload1 := runUnit(t, spec, lr1.Unit)
	if rr, err := c2.Result(ResultRequest{Worker: "a", UnitID: 1, Token: lr1.Token, Stats: payload1}); err != nil || rr.Status != StatusFenced {
		t.Fatalf("old-incarnation result = (%+v, %v), want fenced", rr, err)
	}

	// Units 1 and 2 re-lease under the new incarnation and complete.
	for i := 1; i <= 2; i++ {
		lr := c2.Lease(LeaseRequest{Worker: "b"})
		if lr.Status != StatusLease || lr.Unit.ID != i {
			t.Fatalf("re-lease %d = %+v", i, lr)
		}
		if lr.Token.Incarnation <= lr1.Token.Incarnation {
			t.Fatalf("incarnation not bumped: %s after %s", lr.Token, lr1.Token)
		}
		rr, err := c2.Result(ResultRequest{Worker: "b", UnitID: i, Token: lr.Token, Stats: runUnit(t, spec, lr.Unit)})
		if err != nil || rr.Status != StatusAccepted {
			t.Fatalf("unit %d = (%+v, %v)", i, rr, err)
		}
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("campaign not done after all units completed")
	}
	if got, want := c2.Merged().Iterations, spec.TotalIters; got != want {
		t.Fatalf("final iterations = %d, want %d", got, want)
	}
}

// TestTornCheckpointLoud: external damage to the lease-table checkpoint
// must fail coordinator construction loudly, never silently restart the
// campaign (which would re-run done units and double-bill the operator).
func TestTornCheckpointLoud(t *testing.T) {
	spec := testSpec()
	path := filepath.Join(t.TempDir(), "leases.ckpt")
	c1 := newTestCoordinator(t, CoordinatorConfig{Spec: spec, CheckpointPath: path})
	lr := c1.Lease(LeaseRequest{Worker: "a"})
	if rr, err := c1.Result(ResultRequest{Worker: "a", UnitID: 0, Token: lr.Token, Stats: runUnit(t, spec, lr.Unit)}); err != nil || rr.Status != StatusAccepted {
		t.Fatalf("unit 0 = (%+v, %v)", rr, err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(CoordinatorConfig{Spec: spec, CheckpointPath: path}); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("truncated checkpoint: err = %v, want ErrCorrupt", err)
	}

	// Bit flip in the payload.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCoordinator(CoordinatorConfig{Spec: spec, CheckpointPath: path}); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("bit-flipped checkpoint: err = %v, want ErrCorrupt", err)
	}
}

// TestCheckpointSaveFailureTolerated: a coordinator whose checkpoint
// writes start failing keeps accepting results — determinism makes a
// restart from an older table safe (it just re-runs units), so losing
// durability must not lose availability.
func TestCheckpointSaveFailureTolerated(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	spec := testSpec()
	path := filepath.Join(t.TempDir(), "leases.ckpt")
	c := newTestCoordinator(t, CoordinatorConfig{Spec: spec, CheckpointPath: path})

	faultinject.Arm("orch.checkpoint", faultinject.Fault{Kind: faultinject.Error})
	for i := 0; i < spec.Units; i++ {
		lr := c.Lease(LeaseRequest{Worker: "a"})
		rr, err := c.Result(ResultRequest{Worker: "a", UnitID: lr.Unit.ID, Token: lr.Token, Stats: runUnit(t, spec, lr.Unit)})
		if err != nil || rr.Status != StatusAccepted {
			t.Fatalf("unit %d with failing checkpoints = (%+v, %v), want accepted", i, rr, err)
		}
	}
	if faultinject.Fired("orch.checkpoint") == 0 {
		t.Fatal("checkpoint fault never fired")
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("campaign not done despite failing checkpoints")
	}
	if got, want := c.Merged().Iterations, spec.TotalIters; got != want {
		t.Fatalf("iterations = %d, want %d", got, want)
	}
}

// TestClientRetriesTransientServerFaults: a 500 from the coordinator (the
// "orch.server" fault point) is retried with backoff and succeeds; the
// caller never sees the blip.
func TestClientRetriesTransientServerFaults(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	m, _ := newTestManager(t, ManagerConfig{}, testSpec())
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	var slept []time.Duration
	cl := NewClient(srv.URL, "w1")
	cl.Sleep = func(d time.Duration) { slept = append(slept, d) }

	faultinject.Arm("orch.server", faultinject.Fault{Kind: faultinject.Error, OnHit: 1})
	reg, err := cl.Register(RegisterRequest{Worker: "w1"})
	if err != nil {
		t.Fatalf("register through a faulting server: %v", err)
	}
	if reg.Worker != "w1" {
		t.Fatalf("worker = %q", reg.Worker)
	}
	if len(slept) != 1 {
		t.Fatalf("retry sleeps = %v, want exactly one backoff", slept)
	}

	// Same for the client-side fault point (e.g. connection refused).
	faultinject.Reset()
	slept = nil
	faultinject.Arm("orch.client", faultinject.Fault{Kind: faultinject.Error, OnHit: 1})
	if _, err := cl.Lease(LeaseRequest{Worker: "w1"}); err != nil {
		t.Fatalf("lease through a faulting transport: %v", err)
	}
	if len(slept) != 1 {
		t.Fatalf("retry sleeps = %v, want exactly one backoff", slept)
	}
}

// TestClientHardErrorNotRetried: a 400 (protocol rejection) must surface
// immediately — retrying a rejected payload can never succeed.
func TestClientHardErrorNotRetried(t *testing.T) {
	m, _ := newTestManager(t, ManagerConfig{}, testSpec())
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	var slept []time.Duration
	cl := NewClient(srv.URL, "w1")
	cl.Sleep = func(d time.Duration) { slept = append(slept, d) }

	lr, err := cl.Lease(LeaseRequest{Worker: "w1"})
	if err != nil || lr.Status != StatusLease {
		t.Fatalf("lease = (%+v, %v)", lr, err)
	}
	_, err = cl.Result(ResultRequest{Worker: "w1", Campaign: lr.Campaign, UnitID: lr.Unit.ID, Token: lr.Token, Stats: []byte("junk")})
	if err == nil {
		t.Fatal("undecodable result accepted")
	}
	if len(slept) != 0 {
		t.Fatalf("client retried a hard error: sleeps = %v", slept)
	}
}

// TestWorkerAbandonsFencedUnit: a worker whose heartbeat comes back
// fenced walks away from the unit mid-execution and leases the next one
// instead of dying or submitting doomed results.
func TestWorkerAbandonsFencedUnit(t *testing.T) {
	spec := testSpec()
	spec.Units = 1
	spec.TotalIters = 8
	clock := newFakeClock()
	m, ids := newTestManager(t, ManagerConfig{
		LeaseTTL: 10 * time.Second, Now: clock.Now,
	}, spec)
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	attempts := 0
	leased := make(chan struct{}, 8)
	runner := func(sp CampaignSpec, u Unit, progress func(int), abort func() bool) (*core.Stats, error) {
		attempts++
		leased <- struct{}{}
		if attempts == 1 {
			// First lease: stall until the heartbeat goroutine notices the
			// fence (the test expires the lease underneath us).
			for !abort() {
				time.Sleep(time.Millisecond)
			}
			return nil, ErrUnitAbandoned
		}
		st := core.NewStats(sp.Tool, mustVersion(sp))
		st.Iterations = u.Quota
		progress(u.Quota)
		return st, nil
	}
	w := NewWorker(WorkerConfig{
		Name: "w1", Client: NewClient(srv.URL, "w1"),
		Runner: runner, HeartbeatEvery: 2 * time.Millisecond,
	})

	done := make(chan error, 1)
	go func() { done <- w.Run() }()

	select {
	case <-leased:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never leased the unit")
	}
	// Expire the lease under the running worker; its next heartbeat is
	// fenced, flipping the abort flag.
	clock.Advance(11 * time.Second)

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("worker did not finish")
	}
	if attempts != 2 {
		t.Fatalf("runner attempts = %d, want 2 (abandon, then complete)", attempts)
	}
	if got := m.Refunds(); got != 1 {
		t.Fatalf("refunds = %d, want 1", got)
	}
	if got, want := m.MergedStats(ids[0]).Iterations, spec.TotalIters; got != want {
		t.Fatalf("iterations = %d, want %d", got, want)
	}
}

// TestDistributedMatchesSingleProcess is the acceptance criterion: a
// fixed-(seed, workers, budget) campaign run through the orchestrator —
// with a worker killed mid-lease by an injected fault — produces the same
// total iteration count and the same deduplicated BugKey set as an
// unfaulted single-process ParallelCampaign run.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	spec := CampaignSpec{
		Tool: "bvf", Version: "bpf-next", Sanitize: true,
		Seed: 42, TotalIters: 360, Units: 3, SyncEvery: 60,
	}
	ver, err := spec.KernelVersion()
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the equivalent single-process campaign. SyncEvery is the
	// full per-shard quota, so the whole run is one round and shards never
	// exchange corpus entries — each shard's trajectory is a function of
	// (seed, quota) alone, exactly like a distributed unit.
	ref := core.NewParallelCampaign(core.ParallelConfig{
		CampaignConfig: core.CampaignConfig{
			Source: core.BVFSource(ver.HasKfuncs()), Version: ver,
			Sanitize: true, Seed: spec.Seed, NoMinimize: true,
			Supervision: core.SupervisorConfig{Enabled: true},
		},
		Workers:   spec.Units,
		SyncEvery: spec.TotalIters / spec.Units,
	})
	refStats, err := ref.Run(spec.TotalIters)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}

	// Distributed run through a manager with a persistent state dir (the
	// campaign gets its own findings registry under it).
	m, ids := newTestManager(t, ManagerConfig{
		StateDir:     t.TempDir(),
		LeaseTTL:     1500 * time.Millisecond,
		PollInterval: 25 * time.Millisecond,
	}, spec)
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	// The doomed worker dies mid-lease: the "orch.worker.unit" fault
	// kills it after its first 60-iteration round, 60/120 through unit 0.
	// Its partial work is discarded; the lease expires and the unit is
	// re-leased — with its FULL quota — to a surviving worker.
	faultinject.Arm("orch.worker.unit", faultinject.Fault{Kind: faultinject.Error, OnHit: 1})
	doomed := NewWorker(WorkerConfig{
		Name: "doomed", Client: NewClient(srv.URL, "doomed"),
		HeartbeatEvery: 50 * time.Millisecond,
	})
	if err := doomed.Run(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("doomed worker: err = %v, want injected death", err)
	}
	if doomed.UnitsDone() != 0 {
		t.Fatalf("doomed worker submitted %d units", doomed.UnitsDone())
	}

	// Two survivors finish the campaign, including re-running unit 0
	// after its lease expires (~1.5s of wall clock).
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWorker(WorkerConfig{
				Client:         NewClient(srv.URL, "survivor"),
				HeartbeatEvery: 50 * time.Millisecond,
			})
			errs[i] = w.Run()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
	}
	select {
	case <-m.Done():
	default:
		t.Fatal("campaign not done after all workers exited")
	}
	if got := m.Refunds(); got < 1 {
		t.Fatalf("refunds = %d, want at least the doomed worker's lease", got)
	}

	// Equivalence: same iteration total, same deduplicated BugKey set,
	// same bug discovery points, same merged coverage.
	merged := m.MergedStats(ids[0])
	if merged.Iterations != refStats.Iterations {
		t.Errorf("iterations = %d, reference = %d", merged.Iterations, refStats.Iterations)
	}
	if merged.Accepted != refStats.Accepted {
		t.Errorf("accepted = %d, reference = %d", merged.Accepted, refStats.Accepted)
	}
	if got, want := len(merged.Bugs), len(refStats.Bugs); got != want {
		t.Errorf("bug count = %d, reference = %d", got, want)
	}
	for key, want := range refStats.Bugs {
		got := merged.Bugs[key]
		if got == nil {
			t.Errorf("bug %v missing from distributed run", key)
			continue
		}
		if got.FoundAt != want.FoundAt {
			t.Errorf("bug %v FoundAt = %d, reference = %d", key, got.FoundAt, want.FoundAt)
		}
	}
	for key := range merged.Bugs {
		if refStats.Bugs[key] == nil {
			t.Errorf("distributed run found extra bug %v", key)
		}
	}
	if got, want := merged.Coverage.Count(), refStats.Coverage.Count(); got != want {
		t.Errorf("coverage = %d branches, reference = %d", got, want)
	}
	// The campaign's registry deduplicated across units: one finding per
	// unique BugKey, none damaged.
	store := m.Store(ids[0])
	if got, want := store.Len(), len(refStats.Bugs); got != want {
		t.Errorf("findings store has %d entries, want %d", got, want)
	}
	if d := store.Damaged(); len(d) != 0 {
		t.Errorf("damaged findings: %v", d)
	}
}

// TestWorkerDiesAfterExecutionBeforeSubmit is the strongest refund case:
// the worker finishes the whole unit, then dies holding the unsubmitted
// result. The refunded re-run must reproduce the statistics exactly.
func TestWorkerDiesAfterExecutionBeforeSubmit(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	spec := testSpec()
	spec.Units = 1
	spec.TotalIters = 20
	clock := newFakeClock()
	m, ids := newTestManager(t, ManagerConfig{
		LeaseTTL: 10 * time.Second, Now: clock.Now,
	}, spec)
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	faultinject.Arm("orch.worker.exec", faultinject.Fault{Kind: faultinject.Error, OnHit: 1})
	doomed := NewWorker(WorkerConfig{Client: NewClient(srv.URL, "doomed"), HeartbeatEvery: time.Hour})
	if err := doomed.Run(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("doomed worker: err = %v, want injected death", err)
	}
	if got := m.MergedStats(ids[0]).Iterations; got != 0 {
		t.Fatalf("dead worker's unsubmitted work leaked: %d iterations", got)
	}

	clock.Advance(11 * time.Second) // expire the orphaned lease
	w := NewWorker(WorkerConfig{Client: NewClient(srv.URL, "w2"), HeartbeatEvery: time.Hour})
	if err := w.Run(); err != nil {
		t.Fatalf("recovery worker: %v", err)
	}
	if got := m.Refunds(); got != 1 {
		t.Fatalf("refunds = %d, want 1", got)
	}
	if got, want := m.MergedStats(ids[0]).Iterations, spec.TotalIters; got != want {
		t.Fatalf("iterations = %d, want %d", got, want)
	}
}
