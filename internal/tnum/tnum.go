// Package tnum implements tristate numbers, the bit-level abstract domain
// the eBPF verifier uses to track partially-known register values. A tnum
// (Value, Mask) represents every concrete 64-bit number n such that
// n &^ Mask == Value; bits set in Mask are unknown, bits clear in Mask are
// known and equal to the corresponding bit of Value.
//
// The operations are a faithful port of the kernel's kernel/bpf/tnum.c, and
// each is sound: if a is in ta and b is in tb, then op(a,b) is in
// Op(ta,tb). The property-based tests in this package check exactly that.
package tnum

import "fmt"

// Tnum is a tristate number. The zero value represents the constant 0.
type Tnum struct {
	Value uint64 // known bit values
	Mask  uint64 // unknown bit positions
}

// Unknown represents a completely unknown 64-bit value.
var Unknown = Tnum{Value: 0, Mask: ^uint64(0)}

// Const returns the tnum representing exactly v.
func Const(v uint64) Tnum { return Tnum{Value: v} }

// Range returns the tnum covering the inclusive range [min, max].
// It mirrors the kernel's tnum_range. An inverted range (min > max)
// denotes an empty interval the caller failed to normalize; there is no
// empty tnum, so Range answers with the sound over-approximation Unknown
// rather than fabricating a bogus partial-bits pattern from the XOR fold.
func Range(min, max uint64) Tnum {
	if min > max {
		return Unknown
	}
	chi := min ^ max
	bits := fls64(chi)
	if bits > 63 {
		return Unknown
	}
	delta := uint64(1)<<bits - 1
	return Tnum{Value: min &^ delta, Mask: delta}
}

// fls64 returns the index of the most significant set bit plus one,
// or 0 if x is zero (like the kernel's fls64).
func fls64(x uint64) uint {
	n := uint(0)
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}

// IsConst reports whether the tnum represents exactly one value.
func (t Tnum) IsConst() bool { return t.Mask == 0 }

// EqConst reports whether t is the constant v.
func (t Tnum) EqConst(v uint64) bool { return t.IsConst() && t.Value == v }

// Contains reports whether concrete value v is a member of t.
func (t Tnum) Contains(v uint64) bool { return v&^t.Mask == t.Value }

// IsUnknown reports whether every bit is unknown.
func (t Tnum) IsUnknown() bool { return t.Mask == ^uint64(0) && t.Value == 0 }

// Lshift returns t << shift.
func (t Tnum) Lshift(shift uint8) Tnum {
	return Tnum{Value: t.Value << shift, Mask: t.Mask << shift}
}

// Rshift returns t >> shift (logical).
func (t Tnum) Rshift(shift uint8) Tnum {
	return Tnum{Value: t.Value >> shift, Mask: t.Mask >> shift}
}

// Arshift returns t >> shift (arithmetic) at the given insn bitness
// (32 or 64), mirroring tnum_arshift.
func (t Tnum) Arshift(shift uint8, insnBitness uint8) Tnum {
	if insnBitness == 32 {
		return Tnum{
			Value: uint64(uint32(int32(uint32(t.Value)) >> (shift & 31))),
			Mask:  uint64(uint32(int32(uint32(t.Mask)) >> (shift & 31))),
		}
	}
	return Tnum{
		Value: uint64(int64(t.Value) >> (shift & 63)),
		Mask:  uint64(int64(t.Mask) >> (shift & 63)),
	}
}

// Add returns the sum a + b.
func Add(a, b Tnum) Tnum {
	sm := a.Mask + b.Mask
	sv := a.Value + b.Value
	sigma := sm + sv
	chi := sigma ^ sv
	mu := chi | a.Mask | b.Mask
	return Tnum{Value: sv &^ mu, Mask: mu}
}

// Sub returns the difference a - b.
func Sub(a, b Tnum) Tnum {
	dv := a.Value - b.Value
	alpha := dv + a.Mask
	beta := dv - b.Mask
	chi := alpha ^ beta
	mu := chi | a.Mask | b.Mask
	return Tnum{Value: dv &^ mu, Mask: mu}
}

// And returns the bitwise conjunction a & b.
func And(a, b Tnum) Tnum {
	alpha := a.Value | a.Mask
	beta := b.Value | b.Mask
	v := a.Value & b.Value
	return Tnum{Value: v, Mask: alpha & beta &^ v}
}

// Or returns the bitwise disjunction a | b.
func Or(a, b Tnum) Tnum {
	v := a.Value | b.Value
	mu := a.Mask | b.Mask
	return Tnum{Value: v, Mask: mu &^ v}
}

// Xor returns the bitwise exclusive-or a ^ b.
func Xor(a, b Tnum) Tnum {
	v := a.Value ^ b.Value
	mu := a.Mask | b.Mask
	return Tnum{Value: v &^ mu, Mask: mu}
}

// Mul returns the product a * b. Like the kernel implementation it
// decomposes a into (known, unknown) halves and accumulates partial
// products; it is sound but not maximally precise.
func Mul(a, b Tnum) Tnum {
	acc_v := a.Value * b.Value
	acc_m := Tnum{}
	for a.Value != 0 || a.Mask != 0 {
		if a.Value&1 != 0 {
			acc_m = Add(acc_m, Tnum{Value: 0, Mask: b.Mask})
		} else if a.Mask&1 != 0 {
			acc_m = Add(acc_m, Tnum{Value: 0, Mask: b.Value | b.Mask})
		}
		a = a.Rshift(1)
		b = b.Lshift(1)
	}
	return Add(Tnum{Value: acc_v}, acc_m)
}

// Intersect returns a tnum whose members are in both a and b. The caller
// must know the intersection is non-empty (e.g. after a successful
// comparison), as in the kernel.
func Intersect(a, b Tnum) Tnum {
	v := a.Value | b.Value
	mu := a.Mask & b.Mask
	return Tnum{Value: v &^ mu, Mask: mu}
}

// Union returns the smallest tnum containing both a and b
// (kernel: tnum_union).
func Union(a, b Tnum) Tnum {
	v := a.Value & b.Value
	mu := (a.Value ^ b.Value) | a.Mask | b.Mask
	return Tnum{Value: v &^ mu, Mask: mu}
}

// Cast truncates t to the low size bytes.
func (t Tnum) Cast(size uint8) Tnum {
	if size >= 8 {
		return t
	}
	mask := uint64(1)<<(size*8) - 1
	return Tnum{Value: t.Value & mask, Mask: t.Mask & mask}
}

// IsAligned reports whether every member of t is size-aligned.
func (t Tnum) IsAligned(size uint64) bool {
	if size == 0 {
		return true
	}
	return (t.Value|t.Mask)&(size-1) == 0
}

// In reports whether every member of a is also a member of b
// (a is a subset of b).
func In(a, b Tnum) bool {
	if a.Mask&^b.Mask != 0 {
		return false
	}
	return a.Value&^b.Mask == b.Value&^b.Mask
}

// Subreg returns the tnum for the low 32-bit subregister of t.
func (t Tnum) Subreg() Tnum { return t.Cast(4) }

// ClearSubreg returns t with its low 32 bits known to be zero.
func (t Tnum) ClearSubreg() Tnum {
	return Tnum{Value: t.Value &^ 0xffffffff, Mask: t.Mask &^ 0xffffffff}
}

// WithSubreg returns t with its low 32 bits replaced by subreg's low 32
// bits (kernel: tnum_with_subreg).
func (t Tnum) WithSubreg(subreg Tnum) Tnum {
	hi := Tnum{Value: t.Value &^ 0xffffffff, Mask: t.Mask &^ 0xffffffff}
	lo := subreg.Cast(4)
	return Tnum{Value: hi.Value | lo.Value, Mask: hi.Mask | lo.Mask}
}

// ConstSubreg returns t with its low 32 bits set to the constant v.
func (t Tnum) ConstSubreg(v uint32) Tnum {
	return t.WithSubreg(Const(uint64(v)))
}

// Min returns the smallest unsigned value in t.
func (t Tnum) Min() uint64 { return t.Value }

// Max returns the largest unsigned value in t.
func (t Tnum) Max() uint64 { return t.Value | t.Mask }

// String renders the tnum as the kernel does: a constant prints as its
// value, otherwise as (value; mask).
func (t Tnum) String() string {
	if t.IsConst() {
		return fmt.Sprintf("%#x", t.Value)
	}
	return fmt.Sprintf("(%#x; %#x)", t.Value, t.Mask)
}
