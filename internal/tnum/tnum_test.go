package tnum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sample draws a concrete member of t using bits from r.
func sample(t Tnum, r *rand.Rand) uint64 {
	return t.Value | (r.Uint64() & t.Mask)
}

// arbitrary builds a random tnum whose Value and Mask do not overlap.
func arbitrary(r *rand.Rand) Tnum {
	m := r.Uint64()
	v := r.Uint64() &^ m
	return Tnum{Value: v, Mask: m}
}

func TestConst(t *testing.T) {
	for _, v := range []uint64{0, 1, 42, ^uint64(0), 1 << 63} {
		c := Const(v)
		if !c.IsConst() || c.Value != v {
			t.Errorf("Const(%#x) = %v, want constant", v, c)
		}
		if !c.Contains(v) {
			t.Errorf("Const(%#x) does not contain itself", v)
		}
		if v != 0 && c.Contains(v-1) {
			t.Errorf("Const(%#x) contains %#x", v, v-1)
		}
	}
}

func TestRange(t *testing.T) {
	cases := []struct{ min, max uint64 }{
		{0, 0}, {0, 1}, {0, 255}, {4, 7}, {100, 200}, {0, ^uint64(0)},
		{1 << 32, 1<<32 + 15},
	}
	r := rand.New(rand.NewSource(1))
	for _, c := range cases {
		tn := Range(c.min, c.max)
		for i := 0; i < 200; i++ {
			v := c.min
			if span := c.max - c.min + 1; span != 0 {
				v += r.Uint64() % span
			} else {
				v = r.Uint64() // full range
			}
			if !tn.Contains(v) {
				t.Errorf("Range(%#x,%#x)=%v does not contain %#x", c.min, c.max, tn, v)
			}
		}
	}
}

func TestRangeFullIsUnknown(t *testing.T) {
	if got := Range(0, ^uint64(0)); !got.IsUnknown() {
		t.Errorf("Range(0, max) = %v, want unknown", got)
	}
}

// An inverted (min > max) range is an empty interval the caller failed to
// normalize; Range must degrade to the sound Unknown instead of returning
// a partial-bits tnum that excludes real values.
func TestRangeInvertedIsUnknown(t *testing.T) {
	cases := []struct{ min, max uint64 }{
		{1, 0}, {100, 42}, {^uint64(0), 0}, {1 << 63, 1<<63 - 1},
	}
	for _, c := range cases {
		if got := Range(c.min, c.max); !got.IsUnknown() {
			t.Errorf("Range(%#x, %#x) = %v, want unknown", c.min, c.max, got)
		}
	}
}

// The oracle embeds Tnum.String() in violation reports and triage matches
// findings by exact report text, so the rendering must stay stable.
func TestStringStable(t *testing.T) {
	cases := []struct {
		t    Tnum
		want string
	}{
		{Const(0), "0x0"},
		{Const(42), "0x2a"},
		{Const(^uint64(0)), "0xffffffffffffffff"},
		{Unknown, "(0x0; 0xffffffffffffffff)"},
		{Tnum{Value: 0x10, Mask: 0xf}, "(0x10; 0xf)"},
		{Range(4, 7), "(0x4; 0x3)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.t, got, c.want)
		}
	}
}

// checkBinop verifies soundness of a binary operation: for members a of ta
// and b of tb, f(a,b) must be a member of F(ta,tb).
func checkBinop(t *testing.T, name string, F func(Tnum, Tnum) Tnum, f func(a, b uint64) uint64) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		ta, tb := arbitrary(r), arbitrary(r)
		res := F(ta, tb)
		for j := 0; j < 8; j++ {
			a, b := sample(ta, r), sample(tb, r)
			if got := f(a, b); !res.Contains(got) {
				t.Fatalf("%s unsound: ta=%v tb=%v a=%#x b=%#x concrete=%#x abstract=%v",
					name, ta, tb, a, b, got, res)
			}
		}
	}
}

func TestAddSound(t *testing.T) {
	checkBinop(t, "Add", Add, func(a, b uint64) uint64 { return a + b })
}

func TestSubSound(t *testing.T) {
	checkBinop(t, "Sub", Sub, func(a, b uint64) uint64 { return a - b })
}

func TestAndSound(t *testing.T) {
	checkBinop(t, "And", And, func(a, b uint64) uint64 { return a & b })
}

func TestOrSound(t *testing.T) {
	checkBinop(t, "Or", Or, func(a, b uint64) uint64 { return a | b })
}

func TestXorSound(t *testing.T) {
	checkBinop(t, "Xor", Xor, func(a, b uint64) uint64 { return a ^ b })
}

func TestMulSound(t *testing.T) {
	checkBinop(t, "Mul", Mul, func(a, b uint64) uint64 { return a * b })
}

func TestUnionSound(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		ta, tb := arbitrary(r), arbitrary(r)
		u := Union(ta, tb)
		for j := 0; j < 8; j++ {
			if a := sample(ta, r); !u.Contains(a) {
				t.Fatalf("Union(%v,%v)=%v misses member %#x of first arg", ta, tb, u, a)
			}
			if b := sample(tb, r); !u.Contains(b) {
				t.Fatalf("Union(%v,%v)=%v misses member %#x of second arg", ta, tb, u, b)
			}
		}
	}
}

func TestIntersectOfOverlapping(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		// Build two tnums guaranteed to share the member v.
		v := r.Uint64()
		ma, mb := r.Uint64(), r.Uint64()
		ta := Tnum{Value: v &^ ma, Mask: ma}
		tb := Tnum{Value: v &^ mb, Mask: mb}
		got := Intersect(ta, tb)
		if !got.Contains(v) {
			t.Fatalf("Intersect(%v,%v)=%v misses common member %#x", ta, tb, got, v)
		}
	}
}

func TestShiftsSound(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		tn := arbitrary(r)
		sh := uint8(r.Intn(64))
		l, rr, ar := tn.Lshift(sh), tn.Rshift(sh), tn.Arshift(sh, 64)
		for j := 0; j < 8; j++ {
			v := sample(tn, r)
			if !l.Contains(v << sh) {
				t.Fatalf("Lshift unsound: %v << %d misses %#x", tn, sh, v<<sh)
			}
			if !rr.Contains(v >> sh) {
				t.Fatalf("Rshift unsound: %v >> %d misses %#x", tn, sh, v>>sh)
			}
			if got := uint64(int64(v) >> sh); !ar.Contains(got) {
				t.Fatalf("Arshift unsound: %v s>> %d misses %#x", tn, sh, got)
			}
		}
	}
}

func TestArshift32(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for i := 0; i < 2000; i++ {
		tn := arbitrary(r).Cast(4)
		sh := uint8(r.Intn(32))
		ar := tn.Arshift(sh, 32)
		for j := 0; j < 8; j++ {
			v := uint32(sample(tn, r))
			got := uint64(uint32(int32(v) >> sh))
			if !ar.Contains(got) {
				t.Fatalf("Arshift32 unsound: %v s>> %d misses %#x (from %#x)", tn, sh, got, v)
			}
		}
	}
}

func TestCast(t *testing.T) {
	tn := Tnum{Value: 0xff00ff00ff00ff00, Mask: 0x00ff00ff00ff00ff}
	c := tn.Cast(4)
	if c.Value != 0xff00ff00&0xffffffff || c.Mask != 0x00ff00ff {
		t.Errorf("Cast(4) = %v", c)
	}
	if got := tn.Cast(8); got != tn {
		t.Errorf("Cast(8) changed the tnum: %v", got)
	}
}

func TestInReflexiveAndConst(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 1000; i++ {
		tn := arbitrary(r)
		if !In(tn, tn) {
			t.Fatalf("In not reflexive for %v", tn)
		}
		v := sample(tn, r)
		if !In(Const(v), tn) {
			t.Fatalf("member constant %#x not In %v", v, tn)
		}
	}
}

func TestMinMax(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for i := 0; i < 1000; i++ {
		tn := arbitrary(r)
		for j := 0; j < 8; j++ {
			v := sample(tn, r)
			if v < tn.Min() || v > tn.Max() {
				t.Fatalf("member %#x outside [%#x,%#x] of %v", v, tn.Min(), tn.Max(), tn)
			}
		}
		if !tn.Contains(tn.Min()) || !tn.Contains(tn.Max()) {
			t.Fatalf("Min/Max of %v not members", tn)
		}
	}
}

func TestWithSubreg(t *testing.T) {
	hi := Tnum{Value: 0xaaaa000000000000, Mask: 0x0000ffff00000000}
	lo := Const(0x12345678)
	got := hi.WithSubreg(lo)
	if got.Value&0xffffffff != 0x12345678 {
		t.Errorf("WithSubreg low bits = %#x", got.Value&0xffffffff)
	}
	if got.Value>>32 != hi.Value>>32 || got.Mask>>32 != hi.Mask>>32 {
		t.Errorf("WithSubreg disturbed high bits: %v", got)
	}
	if got.Mask&0xffffffff != 0 {
		t.Errorf("WithSubreg left unknown low bits: %v", got)
	}
}

func TestClearSubreg(t *testing.T) {
	tn := Tnum{Value: 0x1200000034000000, Mask: 0x00ff0000000000ff}
	got := tn.ClearSubreg()
	if got.Value&0xffffffff != 0 || got.Mask&0xffffffff != 0 {
		t.Errorf("ClearSubreg left low bits: %v", got)
	}
}

func TestIsAligned(t *testing.T) {
	if !Const(8).IsAligned(8) {
		t.Error("Const(8) not 8-aligned")
	}
	if Const(4).IsAligned(8) {
		t.Error("Const(4) claimed 8-aligned")
	}
	// Unknown low bits break alignment.
	if (Tnum{Value: 8, Mask: 1}).IsAligned(2) {
		t.Error("tnum with unknown bit 0 claimed 2-aligned")
	}
}

// Property: Range always contains its endpoints (quick-checked).
func TestRangeEndpointsProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		min, max := a, b
		if min > max {
			min, max = max, min
		}
		tn := Range(min, max)
		return tn.Contains(min) && tn.Contains(max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Add identity — Add(t, Const(0)) contains the same members.
func TestAddZeroIdentityProperty(t *testing.T) {
	f := func(v, m uint64) bool {
		tn := Tnum{Value: v &^ m, Mask: m}
		got := Add(tn, Const(0))
		return got == tn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	ta, tb := arbitrary(r), arbitrary(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Mul(ta, tb)
	}
}
