package tnum

import "testing"

// FuzzTnumOps checks, for fuzzer-chosen abstract operands and concrete
// member selectors, that every binary tnum operation is a sound
// abstraction: op(a, b) must be a member of Op(ta, tb) for all members
// a ∈ ta, b ∈ tb. The selector words pick which unknown bits of each
// operand are set in the concrete sample, so one fuzz input exercises
// every operation on the same operand pair.
func FuzzTnumOps(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint8(0))
	f.Add(^uint64(0), uint64(0), ^uint64(0), uint64(0), uint64(1), uint64(2), uint8(63))
	f.Add(uint64(0xff00), uint64(0x00ff), uint64(0x1234), uint64(0xff), uint64(0xaa), uint64(0x55), uint8(7))
	f.Add(uint64(1)<<63, uint64(1)<<62, uint64(3), uint64(0xf0), uint64(1)<<63, uint64(0), uint8(32))

	f.Fuzz(func(t *testing.T, va, ma, vb, mb, sela, selb uint64, sh uint8) {
		ta := Tnum{Value: va &^ ma, Mask: ma}
		tb := Tnum{Value: vb &^ mb, Mask: mb}
		a := ta.Value | (sela & ta.Mask)
		b := tb.Value | (selb & tb.Mask)

		binops := []struct {
			name string
			F    func(Tnum, Tnum) Tnum
			f    func(x, y uint64) uint64
		}{
			{"Add", Add, func(x, y uint64) uint64 { return x + y }},
			{"Sub", Sub, func(x, y uint64) uint64 { return x - y }},
			{"And", And, func(x, y uint64) uint64 { return x & y }},
			{"Or", Or, func(x, y uint64) uint64 { return x | y }},
			{"Xor", Xor, func(x, y uint64) uint64 { return x ^ y }},
			{"Mul", Mul, func(x, y uint64) uint64 { return x * y }},
		}
		for _, op := range binops {
			if res := op.F(ta, tb); !res.Contains(op.f(a, b)) {
				t.Fatalf("%s unsound: ta=%v tb=%v a=%#x b=%#x concrete=%#x abstract=%v",
					op.name, ta, tb, a, b, op.f(a, b), res)
			}
		}

		s := sh & 63
		if got := ta.Lshift(s); !got.Contains(a << s) {
			t.Fatalf("Lshift unsound: %v << %d misses %#x (abstract %v)", ta, s, a<<s, got)
		}
		if got := ta.Rshift(s); !got.Contains(a >> s) {
			t.Fatalf("Rshift unsound: %v >> %d misses %#x (abstract %v)", ta, s, a>>s, got)
		}
		if got := ta.Arshift(s, 64); !got.Contains(uint64(int64(a) >> s)) {
			t.Fatalf("Arshift64 unsound: %v s>> %d misses %#x (abstract %v)", ta, s, uint64(int64(a)>>s), got)
		}
		s32 := sh & 31
		if got := ta.Arshift(s32, 32); !got.Contains(uint64(uint32(int32(uint32(a)) >> s32))) {
			t.Fatalf("Arshift32 unsound: %v s>> %d misses %#x (abstract %v)",
				ta, s32, uint64(uint32(int32(uint32(a))>>s32)), got)
		}

		for _, size := range []uint8{1, 2, 4, 8} {
			mask := ^uint64(0)
			if size < 8 {
				mask = uint64(1)<<(size*8) - 1
			}
			if got := ta.Cast(size); !got.Contains(a & mask) {
				t.Fatalf("Cast(%d) unsound: %v misses %#x (abstract %v)", size, ta, a&mask, got)
			}
		}
		if got := ta.WithSubreg(tb); !got.Contains(a&^0xffffffff | b&0xffffffff) {
			t.Fatalf("WithSubreg unsound: %v with %v misses %#x", ta, tb, a&^0xffffffff|b&0xffffffff)
		}
		if got := ta.ClearSubreg(); !got.Contains(a &^ 0xffffffff) {
			t.Fatalf("ClearSubreg unsound: %v misses %#x", ta, a&^0xffffffff)
		}
		if got := Union(ta, tb); !got.Contains(a) || !got.Contains(b) {
			t.Fatalf("Union unsound: Union(%v,%v)=%v misses %#x or %#x", ta, tb, got, a, b)
		}
	})
}
