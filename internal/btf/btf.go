// Package btf models a minimal BPF Type Format registry: the kernel
// structures eBPF programs may point into via PTR_TO_BTF_ID, their field
// layouts, and the kernel functions (kfuncs) callable from programs.
//
// The semantics that matter for BVF are reproduced faithfully: a
// PTR_TO_BTF_ID pointer is *trusted* — the verifier does not require a
// null check before dereferencing it because the kernel handles faulting
// reads of such pointers — even though the pointer may in fact be null at
// runtime. That asymmetry is the root cause of the paper's Bug #1.
package btf

import "fmt"

// TypeID identifies a kernel type in the registry.
type TypeID int32

// Field describes one member of a kernel struct.
type Field struct {
	Name   string
	Offset int // byte offset within the struct
	Size   int // byte size
	// PointsTo is the pointee's type for pointer fields, or 0.
	PointsTo TypeID
}

// Struct describes a kernel structure reachable from eBPF.
type Struct struct {
	ID     TypeID
	Name   string
	Size   int
	Fields []Field
}

// FieldAt returns the field containing the byte range [off, off+size), or
// nil if the range does not fall inside a single field.
func (s *Struct) FieldAt(off, size int) *Field {
	for i := range s.Fields {
		f := &s.Fields[i]
		if off >= f.Offset && off+size <= f.Offset+f.Size {
			return f
		}
	}
	return nil
}

// Kfunc describes a kernel function callable from eBPF via the
// pseudo-kfunc call instruction.
type Kfunc struct {
	ID   TypeID
	Name string
	// Params lists the expected argument kinds.
	Params []KfuncParam
	// RetBTF is the returned object's type for pointer-returning
	// kfuncs, or 0 for scalar returns.
	RetBTF TypeID
	// RetNullable marks pointer returns that may be null (the verifier
	// tracks them as PTR_TO_BTF_ID_OR_NULL).
	RetNullable bool
	// Acquire/Release mark reference-counting kfuncs.
	Acquire bool
	Release bool
}

// KfuncParam is one expected kfunc parameter.
type KfuncParam struct {
	Name string
	// BTF is the expected pointee type for pointer params, 0 for scalar.
	BTF TypeID
	// Nullable allows passing a possibly-null pointer.
	Nullable bool
}

// Registry holds the kernel's types and kfuncs.
type Registry struct {
	structs map[TypeID]*Struct
	byName  map[string]*Struct
	kfuncs  map[TypeID]*Kfunc
}

// Well-known type IDs, stable across the repository.
const (
	TaskStructID TypeID = 1
	FileID       TypeID = 2
	SockID       TypeID = 3
	InodeID      TypeID = 4
	CgroupID     TypeID = 5
)

// Well-known kfunc IDs.
const (
	KfuncTaskAcquire   TypeID = 100
	KfuncTaskRelease   TypeID = 101
	KfuncTaskFromPid   TypeID = 102
	KfuncRcuReadLock   TypeID = 103
	KfuncRcuReadUnlock TypeID = 104
	KfuncDynptrFromMem TypeID = 105
	KfuncObjNew        TypeID = 106
	KfuncObjDrop       TypeID = 107
)

// NewKernelRegistry returns the standard simulated kernel type registry.
// Sizes are scaled-down but structurally faithful: task_struct contains
// scalar fields and pointers to other kernel objects.
func NewKernelRegistry() *Registry {
	r := &Registry{
		structs: make(map[TypeID]*Struct),
		byName:  make(map[string]*Struct),
		kfuncs:  make(map[TypeID]*Kfunc),
	}
	r.addStruct(&Struct{ID: TaskStructID, Name: "task_struct", Size: 256, Fields: []Field{
		{Name: "state", Offset: 0, Size: 8},
		{Name: "pid", Offset: 8, Size: 4},
		{Name: "tgid", Offset: 12, Size: 4},
		{Name: "flags", Offset: 16, Size: 8},
		{Name: "mm", Offset: 24, Size: 8, PointsTo: InodeID},
		{Name: "files", Offset: 32, Size: 8, PointsTo: FileID},
		{Name: "comm", Offset: 40, Size: 16},
		{Name: "cred", Offset: 56, Size: 8},
		{Name: "parent", Offset: 64, Size: 8, PointsTo: TaskStructID},
		{Name: "utime", Offset: 72, Size: 8},
		{Name: "stime", Offset: 80, Size: 8},
		{Name: "cgroups", Offset: 88, Size: 8, PointsTo: CgroupID},
		{Name: "pad", Offset: 96, Size: 160},
	}})
	r.addStruct(&Struct{ID: FileID, Name: "file", Size: 128, Fields: []Field{
		{Name: "f_flags", Offset: 0, Size: 4},
		{Name: "f_mode", Offset: 4, Size: 4},
		{Name: "f_pos", Offset: 8, Size: 8},
		{Name: "f_inode", Offset: 16, Size: 8, PointsTo: InodeID},
		{Name: "private_data", Offset: 24, Size: 8},
		{Name: "pad", Offset: 32, Size: 96},
	}})
	r.addStruct(&Struct{ID: SockID, Name: "sock", Size: 192, Fields: []Field{
		{Name: "sk_family", Offset: 0, Size: 2},
		{Name: "sk_type", Offset: 2, Size: 2},
		{Name: "sk_protocol", Offset: 4, Size: 4},
		{Name: "sk_rcvbuf", Offset: 8, Size: 4},
		{Name: "sk_sndbuf", Offset: 12, Size: 4},
		{Name: "sk_priority", Offset: 16, Size: 8},
		{Name: "pad", Offset: 24, Size: 168},
	}})
	r.addStruct(&Struct{ID: InodeID, Name: "inode", Size: 128, Fields: []Field{
		{Name: "i_mode", Offset: 0, Size: 2},
		{Name: "i_uid", Offset: 4, Size: 4},
		{Name: "i_gid", Offset: 8, Size: 4},
		{Name: "i_size", Offset: 16, Size: 8},
		{Name: "pad", Offset: 24, Size: 104},
	}})
	r.addStruct(&Struct{ID: CgroupID, Name: "cgroup", Size: 96, Fields: []Field{
		{Name: "id", Offset: 0, Size: 8},
		{Name: "level", Offset: 8, Size: 4},
		{Name: "pad", Offset: 16, Size: 80},
	}})

	r.addKfunc(&Kfunc{
		ID: KfuncTaskAcquire, Name: "bpf_task_acquire",
		Params:  []KfuncParam{{Name: "p", BTF: TaskStructID}},
		RetBTF:  TaskStructID,
		Acquire: true, RetNullable: true,
	})
	r.addKfunc(&Kfunc{
		ID: KfuncTaskRelease, Name: "bpf_task_release",
		Params:  []KfuncParam{{Name: "p", BTF: TaskStructID}},
		Release: true,
	})
	r.addKfunc(&Kfunc{
		ID: KfuncTaskFromPid, Name: "bpf_task_from_pid",
		Params:      []KfuncParam{{Name: "pid", BTF: 0}},
		RetBTF:      TaskStructID,
		RetNullable: true, Acquire: true,
	})
	r.addKfunc(&Kfunc{ID: KfuncRcuReadLock, Name: "bpf_rcu_read_lock"})
	r.addKfunc(&Kfunc{ID: KfuncRcuReadUnlock, Name: "bpf_rcu_read_unlock"})
	r.addKfunc(&Kfunc{
		ID: KfuncObjNew, Name: "bpf_obj_new_impl",
		Params:      []KfuncParam{{Name: "size", BTF: 0}},
		RetBTF:      InodeID,
		RetNullable: true, Acquire: true,
	})
	r.addKfunc(&Kfunc{
		ID: KfuncObjDrop, Name: "bpf_obj_drop_impl",
		Params:  []KfuncParam{{Name: "obj", BTF: InodeID}},
		Release: true,
	})
	return r
}

func (r *Registry) addStruct(s *Struct) {
	r.structs[s.ID] = s
	r.byName[s.Name] = s
}

func (r *Registry) addKfunc(k *Kfunc) { r.kfuncs[k.ID] = k }

// Struct returns the struct with the given ID, or nil.
func (r *Registry) Struct(id TypeID) *Struct { return r.structs[id] }

// StructByName returns the struct with the given name, or nil.
func (r *Registry) StructByName(name string) *Struct { return r.byName[name] }

// Kfunc returns the kfunc with the given ID, or nil.
func (r *Registry) Kfunc(id TypeID) *Kfunc { return r.kfuncs[id] }

// Kfuncs returns all registered kfunc IDs in ascending order.
func (r *Registry) Kfuncs() []TypeID {
	ids := make([]TypeID, 0, len(r.kfuncs))
	for id := range r.kfuncs {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}

// StructIDs returns all registered struct IDs in ascending order.
func (r *Registry) StructIDs() []TypeID {
	ids := make([]TypeID, 0, len(r.structs))
	for id := range r.structs {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
	return ids
}

// AccessError describes a rejected BTF pointer access.
type AccessError struct {
	Type *Struct
	Off  int
	Size int
	Why  string
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("btf: invalid access to %s at off %d size %d: %s", e.Type.Name, e.Off, e.Size, e.Why)
}

// CheckAccess validates a read of [off, off+size) within the struct,
// mirroring btf_struct_access. sizeLimit overrides the struct size bound
// when positive — the verifier's Bug #2 knob passes an inflated limit for
// task_struct, admitting out-of-bounds reads.
func (r *Registry) CheckAccess(id TypeID, off, size int, sizeLimit int) (*Field, error) {
	s := r.structs[id]
	if s == nil {
		return nil, fmt.Errorf("btf: unknown type id %d", id)
	}
	limit := s.Size
	if sizeLimit > 0 {
		limit = sizeLimit
	}
	if off < 0 || size <= 0 || off+size > limit {
		return nil, &AccessError{Type: s, Off: off, Size: size, Why: "outside struct bounds"}
	}
	// Field-granular check: reads must not straddle unrelated fields.
	f := s.FieldAt(off, size)
	if f == nil && off+size <= s.Size {
		return nil, &AccessError{Type: s, Off: off, Size: size, Why: "straddles fields"}
	}
	return f, nil
}
