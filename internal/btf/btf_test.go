package btf

import "testing"

func TestRegistryLookups(t *testing.T) {
	r := NewKernelRegistry()
	task := r.Struct(TaskStructID)
	if task == nil || task.Name != "task_struct" {
		t.Fatalf("task_struct lookup failed: %v", task)
	}
	if got := r.StructByName("sock"); got == nil || got.ID != SockID {
		t.Errorf("StructByName(sock) = %v", got)
	}
	if r.Struct(999) != nil {
		t.Error("unknown id resolved")
	}
	if k := r.Kfunc(KfuncTaskAcquire); k == nil || !k.Acquire {
		t.Errorf("task_acquire kfunc: %v", k)
	}
}

func TestFieldAt(t *testing.T) {
	r := NewKernelRegistry()
	task := r.Struct(TaskStructID)
	f := task.FieldAt(8, 4)
	if f == nil || f.Name != "pid" {
		t.Errorf("FieldAt(8,4) = %v, want pid", f)
	}
	// Sub-field access within comm.
	if f := task.FieldAt(44, 4); f == nil || f.Name != "comm" {
		t.Errorf("FieldAt(44,4) = %v, want comm", f)
	}
	// Straddling pid/tgid boundary is not within a single field.
	if f := task.FieldAt(10, 4); f != nil {
		t.Errorf("straddling FieldAt = %v, want nil", f)
	}
}

func TestFieldLayoutsConsistent(t *testing.T) {
	r := NewKernelRegistry()
	for _, id := range r.StructIDs() {
		s := r.Struct(id)
		end := 0
		for _, f := range s.Fields {
			if f.Offset < end {
				t.Errorf("%s.%s overlaps previous field", s.Name, f.Name)
			}
			end = f.Offset + f.Size
		}
		if end > s.Size {
			t.Errorf("%s fields extend past struct size (%d > %d)", s.Name, end, s.Size)
		}
	}
}

func TestCheckAccessValid(t *testing.T) {
	r := NewKernelRegistry()
	f, err := r.CheckAccess(TaskStructID, 8, 4, 0)
	if err != nil || f == nil || f.Name != "pid" {
		t.Errorf("CheckAccess(pid) = %v, %v", f, err)
	}
}

func TestCheckAccessOOB(t *testing.T) {
	r := NewKernelRegistry()
	task := r.Struct(TaskStructID)
	if _, err := r.CheckAccess(TaskStructID, task.Size, 8, 0); err == nil {
		t.Error("access past struct end allowed")
	}
	if _, err := r.CheckAccess(TaskStructID, -4, 8, 0); err == nil {
		t.Error("negative offset allowed")
	}
	if _, err := r.CheckAccess(TaskStructID, 0, 0, 0); err == nil {
		t.Error("zero-size access allowed")
	}
}

func TestCheckAccessInflatedLimit(t *testing.T) {
	// The Bug #2 knob passes an inflated size limit; CheckAccess must
	// honour it so the verifier model can reproduce the bug.
	r := NewKernelRegistry()
	task := r.Struct(TaskStructID)
	if _, err := r.CheckAccess(TaskStructID, task.Size, 8, task.Size+64); err != nil {
		t.Errorf("inflated-limit access rejected: %v", err)
	}
}

func TestCheckAccessUnknownType(t *testing.T) {
	r := NewKernelRegistry()
	if _, err := r.CheckAccess(424242, 0, 8, 0); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestKfuncIDsSorted(t *testing.T) {
	r := NewKernelRegistry()
	ids := r.Kfuncs()
	if len(ids) == 0 {
		t.Fatal("no kfuncs registered")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("Kfuncs not sorted")
		}
	}
	sids := r.StructIDs()
	for i := 1; i < len(sids); i++ {
		if sids[i-1] >= sids[i] {
			t.Error("StructIDs not sorted")
		}
	}
}
