package triage

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/backoff"
	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kernel"
)

// Config parameterizes the gauntlet. Zero values select defaults.
type Config struct {
	// Replays is the number of deterministic-replay attempts per
	// validation round; all must reproduce the exact signature for the
	// finding to advance.
	Replays int
	// RetryCap bounds quarantine re-validation rounds. A finding still
	// flaky after the cap stays quarantined (with its evidence) — it is
	// reported as such, never silently dropped.
	RetryCap int
	// BackoffBase/BackoffMax shape the exponential backoff between
	// quarantine re-validation rounds.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MinimizeRounds/MinimizeBudget/MinimizeRoundBudget bound the
	// minimization stage (see core.MinimizeOptions).
	MinimizeRounds      int
	MinimizeBudget      time.Duration
	MinimizeRoundBudget time.Duration
	// MinimizeRetries is how many watchdog-tripped minimization attempts
	// are retried (with backoff) before falling back to the unminimized
	// reproducer.
	MinimizeRetries int
	// Sleep, when non-nil, replaces time.Sleep for backoff waits (tests
	// stub it out).
	Sleep func(time.Duration)
}

func (c Config) withDefaults() Config {
	if c.Replays <= 0 {
		c.Replays = 5
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.MinimizeRounds <= 0 {
		c.MinimizeRounds = 4
	}
	if c.MinimizeRoundBudget == 0 {
		c.MinimizeRoundBudget = 2 * time.Second
	}
	if c.MinimizeRetries < 0 {
		c.MinimizeRetries = 0
	} else if c.MinimizeRetries == 0 {
		c.MinimizeRetries = 2
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Gauntlet drives findings through the validation stages, persisting
// after every transition.
type Gauntlet struct {
	cfg   Config
	store *Store
	// crashes is the harness-crash provenance used to correlate
	// non-reproducing findings with our own contained panics.
	crashes []core.HarnessCrash
}

// New builds a gauntlet over the given store.
func New(cfg Config, store *Store) *Gauntlet {
	return &Gauntlet{cfg: cfg.withDefaults(), store: store}
}

// Ingest converts a campaign's deduplicated bug manifestations (plus its
// unattributed anomaly samples) into raw findings and stores them at the
// first stage. Findings already in the store — a resumed run — keep
// their recorded stage and evidence. Harness-crash samples are absorbed
// as correlation provenance. Returns how many findings were added.
func (g *Gauntlet) Ingest(st *core.Stats, env Env) (int, error) {
	if st == nil {
		return 0, nil
	}
	g.crashes = append(g.crashes, st.HarnessCrashes...)
	added := 0
	ingest := func(f *Finding) error {
		if g.store.Has(f.Key()) {
			return nil
		}
		if err := g.store.Put(f); err != nil {
			return err
		}
		added++
		return nil
	}
	for key, rec := range st.Bugs {
		f := &Finding{Raw: RawFinding{
			Key: key, FoundAt: rec.FoundAt, Err: rec.Err,
			Program: rec.Program, Env: env,
		}}
		if err := ingest(f); err != nil {
			return added, err
		}
	}
	for _, rec := range st.UnattributedSamples {
		f := &Finding{Raw: RawFinding{
			Key:     core.BugKey{Indicator: rec.Indicator, Kind: rec.Kind},
			FoundAt: rec.FoundAt, Err: rec.Err, Program: rec.Program, Env: env,
		}}
		if err := ingest(f); err != nil {
			return added, err
		}
	}
	return added, nil
}

// Run drives every unfinished finding through the gauntlet. On error
// (store failure or an injected crash) the partial summary is returned
// alongside it; persisted stages mean a re-run continues where this one
// stopped.
func (g *Gauntlet) Run() (*Summary, error) {
	for _, f := range g.store.Sorted() {
		if f.Stage == StageDone {
			continue
		}
		if err := g.process(f); err != nil {
			return g.summary(), err
		}
	}
	return g.summary(), nil
}

// process advances one finding stage by stage, persisting after each.
// The "triage.stage" fault point sits in the crash window between
// stages: an injected error models the process dying there, with the
// last completed stage already durable.
func (g *Gauntlet) process(f *Finding) error {
	for f.Stage != StageDone {
		if err := faultinject.FireErr("triage.stage"); err != nil {
			return fmt.Errorf("triage: gauntlet interrupted before %s of %s: %w", f.Stage, f.Key(), err)
		}
		switch f.Stage {
		case StageReplay:
			g.stageReplay(f)
		case StageCrossConfig:
			g.stageCrossConfig(f)
		case StageMinimize:
			g.stageMinimize(f)
		}
		if err := g.store.Put(f); err != nil {
			return err
		}
	}
	return nil
}

// stageReplay runs one validation round of N deterministic replays in
// the finding's discovery environment.
//
//   - every replay matches      → advance (promoting a quarantined finding)
//   - none match + correlated   → harness artifact, done
//   - anything else             → quarantine; retry with backoff up to
//     the cap, then stay quarantined with the evidence
func (g *Gauntlet) stageReplay(f *Finding) {
	matched := 0
	base := len(f.Replays)
	for i := 0; i < g.cfg.Replays; i++ {
		rep := replayOnce(f.Raw.Env, f.Raw.Key, base+i+1, f.Raw.Program)
		f.Replays = append(f.Replays, rep)
		if matches(f.Raw.Key, rep) {
			matched++
		}
	}
	switch {
	case matched == g.cfg.Replays:
		if f.Verdict == Flaky {
			f.Note = fmt.Sprintf("promoted from quarantine: %d/%d replays reproduced after %d earlier round(s)",
				matched, g.cfg.Replays, f.Attempts)
		}
		f.Verdict = Pending
		f.Stage = StageCrossConfig
	case matched == 0 && g.artifactCorrelated(f):
		f.Verdict = HarnessArtifact
		f.Note = "0 replays reproduced; correlated with harness-crash/fault-injection provenance"
		f.Stage = StageDone
	default:
		f.Verdict = Flaky
		f.Attempts++
		if f.Attempts > g.cfg.RetryCap {
			f.Note = fmt.Sprintf("quarantined: %d/%d replays reproduced in final round; retry cap (%d) exhausted",
				matched, g.cfg.Replays, g.cfg.RetryCap)
			f.Stage = StageDone
			return
		}
		f.Note = fmt.Sprintf("quarantined: %d/%d replays reproduced; re-validation round %d/%d pending",
			matched, g.cfg.Replays, f.Attempts, g.cfg.RetryCap)
		g.cfg.Sleep(g.backoff(f.Attempts))
	}
}

// backoff returns the exponential re-validation delay for round n
// (shared schedule in internal/backoff).
func (g *Gauntlet) backoff(n int) time.Duration {
	return backoff.Exp(g.cfg.BackoffBase, g.cfg.BackoffMax).Delay(n)
}

// artifactCorrelated reports whether a non-reproducing finding traces
// back to the harness itself: its recorded fault came from injected
// faults, or a contained harness crash shares its iteration or program.
func (g *Gauntlet) artifactCorrelated(f *Finding) bool {
	if strings.Contains(f.Raw.Err, "faultinject: injected") {
		return true
	}
	for _, c := range g.crashes {
		if c.Iteration == f.Raw.FoundAt {
			return true
		}
		if c.Program != nil && f.Raw.Program != nil && c.Program.String() == f.Raw.Program.String() {
			return true
		}
	}
	return false
}

// stageCrossConfig replays the finding across every kernel version with
// the sanitizer on and off (stock bug knobs per version) and classifies
// it from the resulting matrix.
func (g *Gauntlet) stageCrossConfig(f *Finding) {
	f.Matrix = f.Matrix[:0]
	for _, v := range kernel.AllVersions {
		for _, san := range []bool{true, false} {
			rep := replayOnce(Env{Version: v, Sanitize: san, Oracle: f.Raw.Env.Oracle}, f.Raw.Key, 0, f.Raw.Program)
			f.Matrix = append(f.Matrix, MatrixCell{
				Version: v, Sanitize: san,
				Reproduced: matches(f.Raw.Key, rep), Bug: rep.Bug,
			})
		}
	}
	g.classify(f)
	f.Stage = StageMinimize
}

// classify derives the finding's class and trigger set from the matrix.
// Attributed verifier-correctness knobs keep their class even when they
// reproduce only under sanitation: indicator-1 bugs *require* the
// sanitizer to be visible, which is the paper's point, not an artifact.
// ClassSanitizerArtifact is reserved for unattributed sanitize-only
// anomalies.
func (g *Gauntlet) classify(f *Finding) {
	versions := map[kernel.Version]bool{}
	sanOn, sanOff := false, false
	for _, cell := range f.Matrix {
		if !cell.Reproduced {
			continue
		}
		versions[cell.Version] = true
		if cell.Sanitize {
			sanOn = true
		} else {
			sanOff = true
		}
	}
	f.TriggerVersions = f.TriggerVersions[:0]
	for _, v := range kernel.AllVersions {
		if versions[v] {
			f.TriggerVersions = append(f.TriggerVersions, v)
		}
	}
	f.SanitizerDependent = sanOn && !sanOff
	switch {
	case f.Raw.Key.ID.IsVerifierCorrectness() || f.Raw.Key.ID == bugs.CVE2022_23222:
		f.Class = ClassVerifierCorrectness
	case f.Raw.Key.ID == 0 && f.SanitizerDependent:
		f.Class = ClassSanitizerArtifact
	case len(f.TriggerVersions) == 0:
		// Reproduces in its discovery environment but on no stock
		// version: the armed knob set was non-standard.
		f.Class = ClassUnknown
	case len(f.TriggerVersions) < len(kernel.AllVersions):
		f.Class = ClassVersionSpecific
	default:
		f.Class = ClassCrossVersion
	}
}

// stageMinimize shrinks the reproducer under the configured budgets,
// retrying watchdog-tripped attempts with backoff and falling back to
// the unminimized program (with a note) when the budget is exhausted or
// the surface is not checkable. Whatever happens here, the finding has
// survived replay and classification: it leaves as Stable.
func (g *Gauntlet) stageMinimize(f *Finding) {
	defer func() {
		f.Stage = StageDone
		f.Verdict = Stable
	}()
	if f.Raw.Program == nil || f.Raw.Key.ID == 0 {
		f.MinimizeNote = "no program-based reproducer; reported unminimized"
		return
	}
	rep := core.NewReproducer(f.Raw.Env.Version, f.Raw.Env.Bugs, f.Raw.Env.Sanitize, f.Raw.Env.Oracle, f.Raw.Key.ID)
	if !rep.Check(f.Raw.Program) {
		// Dispatcher/offload-surface bugs reproduce in replayOnce but
		// not under the plain load-and-run checker Minimize shrinks
		// against; degrade to the unminimized (still replayable) form.
		f.MinimizeNote = "reproducer not checkable on the minimization surface; reported unminimized"
		return
	}
	for attempt := 0; ; attempt++ {
		// The stall/watchdog window for minimization, distinct from the
		// per-round budget inside MinimizeOpts.
		if err := faultinject.FireErr("triage.minimize"); err != nil {
			if attempt >= g.cfg.MinimizeRetries {
				f.MinimizeNote = fmt.Sprintf("minimization budget exhausted after %d attempt(s) (%v); reported unminimized",
					attempt+1, err)
				return
			}
			g.cfg.Sleep(g.backoff(attempt + 1))
			continue
		}
		f.Minimized = core.MinimizeOpts(rep, f.Raw.Program, core.MinimizeOptions{
			MaxRounds:   g.cfg.MinimizeRounds,
			Budget:      g.cfg.MinimizeBudget,
			RoundBudget: g.cfg.MinimizeRoundBudget,
		})
		return
	}
}

// Summary tallies the store by verdict.
type Summary struct {
	Total       int
	Stable      int
	Quarantined int
	Artifacts   int
	Pending     int
	Findings    []*Finding
	// Damaged lists store files rejected as corrupt at open.
	Damaged []string
}

func (g *Gauntlet) summary() *Summary {
	s := &Summary{Findings: g.store.Sorted(), Damaged: g.store.Damaged()}
	for _, f := range s.Findings {
		s.Total++
		switch f.Verdict {
		case Stable:
			s.Stable++
		case Flaky:
			s.Quarantined++
		case HarnessArtifact:
			s.Artifacts++
		default:
			s.Pending++
		}
	}
	return s
}

// Print renders the per-verdict summary table, each stable finding's
// cross-config matrix, and the quarantine evidence.
func (s *Summary) Print(w io.Writer) {
	fmt.Fprintf(w, "finding-validation gauntlet: %d finding(s)\n", s.Total)
	fmt.Fprintf(w, "  %-18s %d\n", "stable:", s.Stable)
	fmt.Fprintf(w, "  %-18s %d\n", "quarantined:", s.Quarantined)
	fmt.Fprintf(w, "  %-18s %d\n", "harness-artifact:", s.Artifacts)
	fmt.Fprintf(w, "  %-18s %d\n", "pending:", s.Pending)
	if len(s.Damaged) > 0 {
		fmt.Fprintf(w, "  %-18s %d (%s)\n", "damaged files:", len(s.Damaged), strings.Join(s.Damaged, ", "))
	}
	for _, f := range s.Findings {
		fmt.Fprintf(w, "\n%s [%s] %s\n", f.Key(), f.Verdict, f.Class)
		fmt.Fprintf(w, "  found at iteration %d on %v (sanitize=%v): %s\n",
			f.Raw.FoundAt, f.Raw.Env.Version, f.Raw.Env.Sanitize, f.Raw.Err)
		if f.Note != "" {
			fmt.Fprintf(w, "  note: %s\n", f.Note)
		}
		switch f.Verdict {
		case Stable:
			for _, cell := range f.Matrix {
				mark := "-"
				if cell.Reproduced {
					mark = "R"
				}
				fmt.Fprintf(w, "  matrix %-8v sanitize=%-5v %s\n", cell.Version, cell.Sanitize, mark)
			}
			if f.SanitizerDependent {
				fmt.Fprintf(w, "  sanitizer-dependent (invisible without the patches)\n")
			}
			if f.Minimized != nil && f.Raw.Program != nil {
				fmt.Fprintf(w, "  reproducer: %d insns -> %d minimized\n",
					len(f.Raw.Program.Insns), len(f.Minimized.Insns))
			} else if f.MinimizeNote != "" {
				fmt.Fprintf(w, "  reproducer: %s\n", f.MinimizeNote)
			}
		case Flaky:
			ok := 0
			for _, r := range f.Replays {
				if matches(f.Raw.Key, r) {
					ok++
				}
			}
			fmt.Fprintf(w, "  evidence: %d/%d replays reproduced across %d round(s)\n",
				ok, len(f.Replays), f.Attempts)
		}
	}
}
