package triage

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kernel"
)

func storedFinding() *Finding {
	return &Finding{Raw: RawFinding{
		Key:     core.BugKey{ID: 4, Indicator: kernel.Indicator2, Kind: "syscall-warning"},
		FoundAt: 42, Err: "WARNING: something", Env: testEnv(),
	}}
}

// TestStoreRoundTrip: findings persist across a store reopen with their
// stage and evidence intact.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := storedFinding()
	f.Stage = StageCrossConfig
	f.Verdict = Flaky
	f.Replays = []Report{{Attempt: 1, Reproduced: true, Bug: 4, Kind: "syscall-warning"}}
	if err := s.Put(f); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.Get(f.Key())
	if got == nil {
		t.Fatal("finding missing after reopen")
	}
	if got.Stage != StageCrossConfig || got.Verdict != Flaky || len(got.Replays) != 1 {
		t.Errorf("round trip lost state: stage=%v verdict=%v replays=%d",
			got.Stage, got.Verdict, len(got.Replays))
	}
}

// TestStoreTornWriteRecovered: a crash between the temp write and the
// rename (injected) leaves the previous consistent finding on disk, and
// the staging file is ignored on reopen.
func TestStoreTornWriteRecovered(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := storedFinding()
	if err := s.Put(f); err != nil {
		t.Fatal(err)
	}

	faultinject.Arm("checkpoint.rename", faultinject.Fault{Kind: faultinject.Error, OnHit: 1})
	f.Stage = StageDone
	f.Verdict = Stable
	if err := s.Put(f); err == nil {
		t.Fatal("want torn-write failure from injected rename fault")
	}
	faultinject.Reset()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.Get(f.Key())
	if got == nil {
		t.Fatal("previous finding lost by the torn write")
	}
	if got.Stage != StageReplay || got.Verdict != Pending {
		t.Errorf("torn write leaked partial state: stage=%v verdict=%v", got.Stage, got.Verdict)
	}
	if len(s2.Damaged()) != 0 {
		t.Errorf("torn staging file reported as damaged: %v", s2.Damaged())
	}
}

// TestStoreCorruptFileReported: a damaged finding file is surfaced in
// Damaged and skipped rather than aborting the open or being silently
// forgotten.
func TestStoreCorruptFileReported(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "finding-99-i0-bogus.ckpt")
	if err := os.WriteFile(bad, []byte("not a checkpoint envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("corrupt file decoded into %d findings", s.Len())
	}
	d := s.Damaged()
	if len(d) != 1 || !strings.Contains(d[0], "bogus") {
		t.Errorf("damaged = %v, want the corrupt filename", d)
	}
}

// TestGauntletResumeMidway: the process dies (injected) between the
// replay and cross-config stages; a fresh gauntlet over the reopened
// store completes the finding without redoing the finished stage.
func TestGauntletResumeMidway(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := deterministicFinding(t)
	if err := s.Put(f); err != nil {
		t.Fatal(err)
	}
	g := New(Config{Sleep: func(time.Duration) {}}, s)

	// The first stage boundary passes; the crash hits before the second.
	faultinject.Arm("triage.stage", faultinject.Fault{Kind: faultinject.Error, OnHit: 2})
	if _, err := g.Run(); err == nil {
		t.Fatal("want interruption from injected stage fault")
	}
	faultinject.Reset()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.Get(f.Key())
	if got == nil {
		t.Fatal("in-flight finding missing after crash")
	}
	if got.Stage != StageCrossConfig {
		t.Fatalf("persisted stage = %v, want cross-config (replay already durable)", got.Stage)
	}
	if len(got.Replays) != 5 {
		t.Fatalf("persisted replays = %d, want the full first round", len(got.Replays))
	}

	g2 := New(Config{Sleep: func(time.Duration) {}}, s2)
	sum, err := g2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.Stage != StageDone || got.Verdict != Stable {
		t.Errorf("resumed gauntlet left stage=%v verdict=%v, want done/stable", got.Stage, got.Verdict)
	}
	if len(got.Replays) != 5 {
		t.Errorf("resume redid the replay stage: %d replays", len(got.Replays))
	}
	if sum.Stable != 1 {
		t.Errorf("summary stable = %d, want 1", sum.Stable)
	}
}

// TestStorePutSurfacesDirSyncFailure: creating a new finding file whose
// directory entry cannot be fsynced must fail the Put — the finding may
// vanish on power loss, and the in-memory view must not get ahead of
// what a restarted process would load.
func TestStorePutSurfacesDirSyncFailure(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm("checkpoint.syncdir", faultinject.Fault{Kind: faultinject.Error, OnHit: 1})
	f := storedFinding()
	if err := s.Put(f); err == nil {
		t.Fatal("Put with failing directory fsync reported success")
	}
	if s.Has(f.Key()) {
		t.Fatal("failed Put left the finding in the in-memory view")
	}
	// The fault is gone; the retried Put lands and survives a reopen.
	if err := s.Put(f); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(f.Key()) {
		t.Fatal("finding missing after recovered Put and reopen")
	}
}
