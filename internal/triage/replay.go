package triage

import (
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/maps"
)

// replayOnce re-runs a finding once in env, on pristine kernels, and
// reports what the oracle observed. A finding can manifest on several
// surfaces (direct execution, XDP offload, the XDP dispatcher, the
// map-dump syscalls); each surface runs on its own fresh kernel so a
// fault on one cannot masquerade as another, and the first surface whose
// anomaly matches the expected signature wins. When no surface matches,
// the first anomaly seen (if any) is returned so the evidence records
// what actually happened instead of a bare "no".
//
// The "triage.replay" fault point models a nondeterministic oracle: an
// injected error turns this attempt into a non-reproduction, which is
// how the quarantine tests manufacture flakiness.
func replayOnce(env Env, key core.BugKey, attempt int, prog *isa.Program) Report {
	if err := faultinject.FireErr("triage.replay"); err != nil {
		return Report{Attempt: attempt, Err: err.Error()}
	}
	var surfaces []func(Env, *isa.Program) (Report, bool)
	if prog != nil {
		surfaces = append(surfaces, replayDirect)
		if prog.Type == isa.ProgTypeXDP {
			surfaces = append(surfaces, replayOffload, replayDispatcher)
		}
	} else {
		// Findings with no triggering program (bug #9's map-dump KASAN
		// report) replay through the syscall surface alone.
		surfaces = append(surfaces, replaySyscalls)
	}
	var first *Report
	for _, surface := range surfaces {
		rep, ok := surface(env, prog)
		if !ok {
			continue
		}
		rep.Attempt = attempt
		if matches(key, rep) {
			return rep
		}
		if first == nil && rep.Reproduced {
			r := rep
			first = &r
		}
	}
	if first != nil {
		return *first
	}
	return Report{Attempt: attempt}
}

// reportFrom attributes an anomaly (knob-removal re-verification via
// Kernel.Triage) and packages it as replay evidence.
func reportFrom(k *kernel.Kernel, a *kernel.Anomaly, prog *isa.Program) Report {
	return Report{
		Reproduced: true,
		Bug:        k.Triage(a, prog),
		Kind:       a.Kind,
		Indicator:  a.Indicator,
		Err:        a.Err.Error(),
	}
}

// replayDirect loads and runs the program exactly as a campaign
// iteration does: classify a load error, otherwise run twice.
func replayDirect(env Env, prog *isa.Program) (Report, bool) {
	k, _, err := core.NewReplayKernel(env.Version, env.Bugs, env.Sanitize, env.Oracle)
	if err != nil {
		return Report{}, false
	}
	lp, lerr := k.LoadProgram(prog)
	if lerr != nil {
		if a := kernel.Classify(lerr); a != nil {
			return reportFrom(k, a, prog), true
		}
		return Report{Err: lerr.Error()}, true
	}
	for run := 0; run < 2; run++ {
		out := k.Run(lp)
		if a := kernel.Classify(out.Err); a != nil {
			return reportFrom(k, a, prog), true
		}
	}
	return Report{}, true
}

// replayOffload runs an XDP program as device-offloaded (bug #11's
// missing execution-environment check).
func replayOffload(env Env, prog *isa.Program) (Report, bool) {
	k, _, err := core.NewReplayKernel(env.Version, env.Bugs, env.Sanitize, env.Oracle)
	if err != nil {
		return Report{}, false
	}
	lp, lerr := k.LoadProgram(prog)
	if lerr != nil {
		return Report{}, false // load outcomes belong to replayDirect
	}
	lp.Offloaded = true
	out := k.Run(lp)
	if a := kernel.Classify(out.Err); a != nil {
		return reportFrom(k, a, prog), true
	}
	return Report{}, true
}

// replayDispatcher drives the XDP dispatcher into its torn-update window
// (bug #7 fires when an execution races the third update).
func replayDispatcher(env Env, prog *isa.Program) (Report, bool) {
	k, _, err := core.NewReplayKernel(env.Version, env.Bugs, env.Sanitize, env.Oracle)
	if err != nil {
		return Report{}, false
	}
	lp, lerr := k.LoadProgram(prog)
	if lerr != nil {
		return Report{}, false
	}
	for i := 0; i < 3; i++ {
		k.UpdateDispatcher(lp)
	}
	out := k.RunDispatcher()
	if a := kernel.Classify(out.Err); a != nil {
		return reportFrom(k, a, prog), true
	}
	return Report{}, true
}

// replaySyscalls exercises the map-dump syscall surface: populate each
// hash map in the standard pool and walk it the way the dump syscalls
// do. Bug #9's bucket over-read fires on any non-empty hash map.
func replaySyscalls(env Env, _ *isa.Program) (Report, bool) {
	k, pool, err := core.NewReplayKernel(env.Version, env.Bugs, env.Sanitize, env.Oracle)
	if err != nil {
		return Report{}, false
	}
	for _, h := range pool {
		if h.Spec.Type != maps.Hash && h.Spec.Type != maps.LRUHash {
			continue
		}
		m := k.MapByFD(h.FD)
		if m == nil {
			continue
		}
		for i := 0; i < 3; i++ {
			mk := make([]byte, h.Spec.KeySize)
			mk[0] = byte(i + 1)
			_ = m.Update(mk, make([]byte, h.Spec.ValueSize), maps.UpdateAny)
		}
		if _, derr := k.DumpMap(h.FD); derr != nil {
			if a := kernel.Classify(derr); a != nil {
				return reportFrom(k, a, nil), true
			}
		}
	}
	return Report{}, true
}
