package triage

import (
	"bytes"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/kernel"
)

// testEnv is the environment the shared campaign runs in.
func testEnv() Env {
	return Env{Version: kernel.BPFNext, Sanitize: true}
}

// campaignStats runs one moderate fixed-seed campaign (minimization
// deferred to the gauntlet) and caches the result for every test.
var (
	campOnce  sync.Once
	campStats *core.Stats
)

func campaignStats(t *testing.T) *core.Stats {
	t.Helper()
	campOnce.Do(func() {
		c := core.NewCampaign(core.CampaignConfig{
			Source: core.BVFSource(true), Version: kernel.BPFNext,
			Sanitize: true, Seed: 7, NoMinimize: true,
		})
		if st, err := c.Run(10000); err == nil {
			campStats = st
		}
	})
	if campStats == nil {
		t.Fatal("shared campaign failed")
	}
	return campStats
}

// stubSleep swaps backoff waits for instant, recorded ones.
func stubSleep(waits *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *waits = append(*waits, d) }
}

// deterministicFinding picks a program-based finding from the shared
// campaign whose replay matches its signature without any faults armed
// and whose reproducer is checkable on the minimization surface.
func deterministicFinding(t *testing.T) *Finding {
	t.Helper()
	st := campaignStats(t)
	var keys []core.BugKey
	for key := range st.Bugs {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		return (&Finding{Raw: RawFinding{Key: keys[i]}}).Key() < (&Finding{Raw: RawFinding{Key: keys[j]}}).Key()
	})
	env := testEnv()
	for _, key := range keys {
		rec := st.Bugs[key]
		if rec.Program == nil {
			continue
		}
		f := &Finding{Raw: RawFinding{
			Key: key, FoundAt: rec.FoundAt, Err: rec.Err,
			Program: rec.Program, Env: env,
		}}
		if !matches(key, replayOnce(env, key, 0, rec.Program)) {
			continue
		}
		if !core.NewReproducer(env.Version, env.Bugs, env.Sanitize, env.Oracle, key.ID).Check(rec.Program) {
			continue
		}
		return f
	}
	t.Fatal("no deterministically replayable program finding in the campaign")
	return nil
}

// TestGauntletStable is the end-to-end acceptance path: a fixed-seed
// campaign's findings enter the gauntlet and at least one verifier
// correctness bug comes out Stable with a full cross-config matrix.
func TestGauntletStable(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	st := campaignStats(t)
	store, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	var waits []time.Duration
	g := New(Config{Sleep: stubSleep(&waits)}, store)
	added, err := g.Ingest(st, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("campaign produced no findings to ingest")
	}
	// Re-ingesting must be a no-op (the resume path).
	if again, err := g.Ingest(st, testEnv()); err != nil || again != 0 {
		t.Fatalf("re-ingest added %d findings (err %v), want 0", again, err)
	}
	sum, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != added {
		t.Errorf("summary total %d != ingested %d", sum.Total, added)
	}
	if sum.Pending != 0 {
		t.Errorf("%d findings left pending — the gauntlet must reach a verdict on all", sum.Pending)
	}
	stableVerifier := 0
	for _, f := range sum.Findings {
		if f.Stage != StageDone {
			t.Errorf("%s left at stage %s", f.Key(), f.Stage)
		}
		if f.Verdict != Stable {
			continue
		}
		if len(f.Matrix) != len(kernel.AllVersions)*2 {
			t.Errorf("%s: matrix has %d cells, want %d", f.Key(), len(f.Matrix), len(kernel.AllVersions)*2)
		}
		if f.Class == ClassVerifierCorrectness {
			stableVerifier++
		}
	}
	if stableVerifier == 0 {
		t.Error("no stable verifier correctness finding survived the gauntlet")
	}
	var buf bytes.Buffer
	sum.Print(&buf)
	if !strings.Contains(buf.String(), "stable:") || !strings.Contains(buf.String(), "matrix") {
		t.Error("summary print malformed")
	}
}

// TestGauntletFlakyQuarantinedThenPromoted: one injected replay failure
// lands the finding in quarantine; the next validation round replays
// cleanly and promotes it to Stable, keeping the full evidence trail.
func TestGauntletFlakyQuarantinedThenPromoted(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	defer faultinject.Reset()
	f := deterministicFinding(t)
	store, _ := Open("")
	if err := store.Put(f); err != nil {
		t.Fatal(err)
	}
	var waits []time.Duration
	g := New(Config{Replays: 5, RetryCap: 3, Sleep: stubSleep(&waits)}, store)

	// The 2nd replay attempt reports a nondeterministic non-reproduction.
	faultinject.Arm("triage.replay", faultinject.Fault{Kind: faultinject.Error, OnHit: 2})
	sum, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Stable {
		t.Fatalf("verdict = %v, want stable after promotion", f.Verdict)
	}
	if f.Attempts != 1 {
		t.Errorf("attempts = %d, want exactly 1 quarantine round", f.Attempts)
	}
	if len(f.Replays) != 10 {
		t.Errorf("replays = %d, want 10 (flaky round + clean round)", len(f.Replays))
	}
	if f.Replays[1].Reproduced {
		t.Error("the injected-failure replay is recorded as reproduced")
	}
	if !strings.Contains(f.Note, "promoted from quarantine") {
		t.Errorf("note %q does not record the promotion", f.Note)
	}
	if len(waits) != 1 {
		t.Errorf("backoff slept %d times, want 1", len(waits))
	}
	if sum.Stable == 0 || sum.Quarantined != 0 {
		t.Errorf("summary stable=%d quarantined=%d, want promoted finding counted stable",
			sum.Stable, sum.Quarantined)
	}
}

// TestGauntletFlakyStaysQuarantined: a persistently nondeterministic
// oracle exhausts the retry cap; the finding stays quarantined with its
// evidence — reported, never dropped, and never in the stable set.
func TestGauntletFlakyStaysQuarantined(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	defer faultinject.Reset()
	f := deterministicFinding(t)
	store, _ := Open("")
	if err := store.Put(f); err != nil {
		t.Fatal(err)
	}
	var waits []time.Duration
	g := New(Config{Replays: 5, RetryCap: 2, Sleep: stubSleep(&waits)}, store)

	// Every other replay fails: no round is ever clean.
	faultinject.Arm("triage.replay", faultinject.Fault{Kind: faultinject.Error, Every: 2})
	sum, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Flaky || f.Stage != StageDone {
		t.Fatalf("verdict = %v stage = %v, want quarantined and done", f.Verdict, f.Stage)
	}
	if f.Attempts != 3 {
		t.Errorf("attempts = %d, want cap+1 rounds consumed", f.Attempts)
	}
	if len(f.Matrix) != 0 {
		t.Error("quarantined finding ran cross-config classification")
	}
	if len(f.Replays) != 15 {
		t.Errorf("evidence has %d replays, want 15 (3 rounds of 5)", len(f.Replays))
	}
	if !strings.Contains(f.Note, "retry cap") {
		t.Errorf("note %q does not record the exhausted cap", f.Note)
	}
	// Backoff is exponential between rounds.
	if len(waits) != 2 || waits[1] <= waits[0] {
		t.Errorf("backoff waits = %v, want 2 increasing delays", waits)
	}
	if sum.Quarantined != 1 || sum.Stable != 0 {
		t.Errorf("summary quarantined=%d stable=%d; the flaky finding must stay visible",
			sum.Quarantined, sum.Stable)
	}
	var buf bytes.Buffer
	sum.Print(&buf)
	if !strings.Contains(buf.String(), "evidence:") {
		t.Error("summary print omits the quarantine evidence")
	}
}

// TestGauntletHarnessArtifact: a finding whose recorded fault came from
// injected harness faults never reproduces and is correlated with its
// provenance instead of being quarantined forever.
func TestGauntletHarnessArtifact(t *testing.T) {
	store, _ := Open("")
	f := &Finding{Raw: RawFinding{
		Key:     core.BugKey{Indicator: kernel.Indicator2, Kind: "kernel-panic"},
		FoundAt: 123,
		Err:     `faultinject: injected error at "kernel.exec" (hit 3)`,
		Env:     testEnv(),
	}}
	if err := store.Put(f); err != nil {
		t.Fatal(err)
	}
	var waits []time.Duration
	g := New(Config{Sleep: stubSleep(&waits)}, store)
	sum, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != HarnessArtifact {
		t.Fatalf("verdict = %v, want harness-artifact", f.Verdict)
	}
	if sum.Artifacts != 1 {
		t.Errorf("summary artifacts = %d, want 1", sum.Artifacts)
	}
	if !strings.Contains(f.Note, "provenance") {
		t.Errorf("note %q does not explain the correlation", f.Note)
	}
}

// TestGauntletCrashCorrelation: a finding sharing its iteration with a
// contained harness crash is an artifact, not a kernel bug.
func TestGauntletCrashCorrelation(t *testing.T) {
	store, _ := Open("")
	st := core.NewStats("BVF", kernel.BPFNext)
	st.UnattributedSamples = append(st.UnattributedSamples, core.BugRecord{
		Kind: "kernel-panic", Indicator: kernel.Indicator2, FoundAt: 777,
		Err: "BUG: unable to handle page fault",
	})
	st.HarnessCrashes = append(st.HarnessCrashes, core.HarnessCrash{
		Shard: 0, Iteration: 777, Value: "runtime error: index out of range",
	})
	g := New(Config{Sleep: func(time.Duration) {}}, store)
	if _, err := g.Ingest(st, testEnv()); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	f := store.Sorted()[0]
	if f.Verdict != HarnessArtifact {
		t.Errorf("verdict = %v, want harness-artifact via crash correlation", f.Verdict)
	}
}

// TestMinimizeTimeoutGraceful: when every minimization attempt trips the
// watchdog, the gauntlet retries with backoff and then degrades to the
// unminimized reproducer — the finding is still Stable, with a note.
func TestMinimizeTimeoutGraceful(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	defer faultinject.Reset()
	f := deterministicFinding(t)
	store, _ := Open("")
	if err := store.Put(f); err != nil {
		t.Fatal(err)
	}
	var waits []time.Duration
	g := New(Config{MinimizeRetries: 1, Sleep: stubSleep(&waits)}, store)

	faultinject.Arm("triage.minimize", faultinject.Fault{Kind: faultinject.Error, Every: 1})
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Stable {
		t.Fatalf("verdict = %v, want stable despite minimization failure", f.Verdict)
	}
	if f.Minimized != nil {
		t.Error("watchdog-tripped minimization still produced a program")
	}
	if !strings.Contains(f.MinimizeNote, "unminimized") {
		t.Errorf("minimize note %q does not record the fallback", f.MinimizeNote)
	}
	if len(waits) != 1 {
		t.Errorf("minimization retried %d times with backoff, want 1", len(waits))
	}
}
