// Package triage is the finding-validation gauntlet: the pipeline every
// raw campaign finding passes before it may be reported as a bug.
//
// The paper only reports bugs with *stable reproducers* (§6.1) and
// triages each one by hand — replaying it, checking which kernel
// versions it affects, and shrinking the reproducer (§6.5). This package
// automates that discipline and adds the operational hardening a
// multi-day campaign needs: deterministic replay on pristine kernels,
// cross-version × sanitizer classification, quarantine (with evidence
// and bounded re-validation) for findings that do not reproduce
// deterministically, correlation against harness-crash provenance so
// our own bugs are never reported as kernel bugs, and a crash-consistent
// on-disk store so a killed process resumes triage mid-gauntlet instead
// of redoing or — worse — dropping it.
package triage

import (
	"fmt"
	"strings"

	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// Verdict is a finding's validation outcome.
type Verdict int

// Verdicts.
const (
	// Pending: the gauntlet has not finished with this finding.
	Pending Verdict = iota
	// Stable: deterministically replayed, classified, and (where
	// possible) minimized — reportable.
	Stable
	// Flaky: did not reproduce on every replay. Quarantined with its
	// replay evidence and re-validated with backoff up to the retry cap;
	// never silently dropped.
	Flaky
	// HarnessArtifact: correlated with a contained harness crash or
	// injected fault — our bug, not the kernel's.
	HarnessArtifact
)

func (v Verdict) String() string {
	switch v {
	case Pending:
		return "pending"
	case Stable:
		return "stable"
	case Flaky:
		return "quarantined"
	case HarnessArtifact:
		return "harness-artifact"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// Stage is a finding's position in the gauntlet. Persisted after every
// transition, so a crashed process resumes exactly where it stopped.
type Stage int

// Stages, in order.
const (
	StageReplay Stage = iota
	StageCrossConfig
	StageMinimize
	StageDone
)

func (s Stage) String() string {
	switch s {
	case StageReplay:
		return "replay"
	case StageCrossConfig:
		return "cross-config"
	case StageMinimize:
		return "minimize"
	case StageDone:
		return "done"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Class is the cross-config classification of a stable finding.
type Class int

// Classes.
const (
	ClassUnknown Class = iota
	// ClassVerifierCorrectness: attributed to a verifier correctness
	// knob — the paper's headline bug class.
	ClassVerifierCorrectness
	// ClassSanitizerArtifact: an unattributed anomaly that only fires
	// with the sanitizer patches applied — plausibly instrumentation at
	// fault rather than the kernel.
	ClassSanitizerArtifact
	// ClassVersionSpecific: reproduces on a strict subset of versions.
	ClassVersionSpecific
	// ClassCrossVersion: reproduces on every kernel version.
	ClassCrossVersion
)

func (c Class) String() string {
	switch c {
	case ClassUnknown:
		return "unknown"
	case ClassVerifierCorrectness:
		return "verifier-correctness"
	case ClassSanitizerArtifact:
		return "sanitizer-artifact"
	case ClassVersionSpecific:
		return "version-specific"
	case ClassCrossVersion:
		return "cross-version"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Env is the kernel environment a finding was discovered in (and is
// replayed in). A nil Bugs set selects the version's default knobs.
type Env struct {
	Version  kernel.Version
	Sanitize bool
	// Oracle arms the abstract-state soundness checker on replay kernels.
	// IndicatorSoundness findings only reproduce with it on, like
	// indicator-1 findings only reproduce with Sanitize.
	Oracle bool
	Bugs   bugs.Set
}

// RawFinding is one deduplicated campaign finding entering the gauntlet:
// the manifestation signature plus everything needed to replay it.
type RawFinding struct {
	// Key is the manifestation signature (bug ID + oracle signature).
	// ID 0 marks an unattributed anomaly sample.
	Key     core.BugKey
	FoundAt int
	Err     string
	// Program is the triggering program; nil for findings surfaced by
	// the syscall layer alone (map dumps).
	Program *isa.Program
	Env     Env
}

// Report is the outcome of one replay attempt — the quarantine evidence
// kept for flaky findings.
type Report struct {
	// Attempt numbers the replay across validation rounds (1-based);
	// 0 for cross-config matrix probes.
	Attempt    int
	Reproduced bool
	// Bug, Kind, Indicator describe the anomaly the replay actually
	// produced (which may differ from the expected signature).
	Bug       bugs.ID
	Kind      string
	Indicator kernel.Indicator
	Err       string
}

// MatrixCell is one cross-config replay outcome.
type MatrixCell struct {
	Version    kernel.Version
	Sanitize   bool
	Reproduced bool
	Bug        bugs.ID
}

// Finding is a raw finding plus everything the gauntlet has learned
// about it. It is the unit of persistence: the store writes it after
// every stage transition.
type Finding struct {
	Raw     RawFinding
	Stage   Stage
	Verdict Verdict
	Class   Class
	// Replays is the full replay evidence, across validation rounds.
	Replays []Report
	// Matrix is the cross-config classification grid.
	Matrix []MatrixCell
	// SanitizerDependent: reproduces only with sanitation enabled (true
	// for indicator-1 bugs by construction — their invalid accesses are
	// silent without the patches).
	SanitizerDependent bool
	// TriggerVersions are the stock kernel versions that reproduce it.
	TriggerVersions []kernel.Version
	// Minimized is the shrunken stable reproducer, when minimization
	// applied and succeeded.
	Minimized *isa.Program
	// MinimizeNote explains a minimization fallback (no program, surface
	// not checkable, watchdog budget exhausted).
	MinimizeNote string
	// Attempts counts quarantine re-validation rounds consumed.
	Attempts int
	// Note carries verdict provenance (quarantine evidence summary,
	// promotion, artifact correlation).
	Note string
}

// Key returns the finding's stable, filesystem-safe identity — the
// manifestation signature slugged for use as a store filename.
func (f *Finding) Key() string {
	return fmt.Sprintf("%02d-i%d-%s", int(f.Raw.Key.ID), int(f.Raw.Key.Indicator), slug(f.Raw.Key.Kind))
}

// slug maps an oracle kind ("kasan:oob") to a filename-safe token.
func slug(s string) string {
	if s == "" {
		return "none"
	}
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// matches reports whether a replay reproduced the expected
// manifestation: same attributed bug under the same oracle signature.
func matches(key core.BugKey, rep Report) bool {
	return rep.Reproduced && rep.Bug == key.ID && rep.Kind == key.Kind && rep.Indicator == key.Indicator
}
