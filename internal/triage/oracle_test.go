package triage

import (
	"math/rand"
	"testing"

	"repro/internal/btf"
	"repro/internal/bugs"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// witnessSource feeds the campaign the minimal bug-3 soundness witness:
// the kfunc-backtracking knob collapses R6's AND-bounded scalar to the
// constant 0 while the interpreter holds the real ctx-derived value, so
// only the differential oracle — not indicator 1 or 2 — can see the lie.
type witnessSource struct{}

func (witnessSource) Name() string { return "oracle-witness" }

func (witnessSource) Generate(*rand.Rand, []core.MapHandle) *isa.Program {
	return &isa.Program{
		Type: isa.ProgTypeSocketFilter, GPLCompatible: true, Name: "oracle_witness",
		Insns: []isa.Instruction{
			isa.LoadMem(isa.SizeW, isa.R6, isa.R1, 0),
			isa.Alu64Imm(isa.ALUAnd, isa.R6, 0xff),
			isa.CallKfunc(int32(btf.KfuncRcuReadLock)),
			isa.Mov64Reg(isa.R0, isa.R6),
			isa.Exit(),
		},
	}
}

// TestOracleCatchesArmedBug is the end-to-end acceptance path for
// IndicatorSoundness: a campaign with the bounds-tracking bug armed and
// the oracle on must surface the soundness finding, attribute it to the
// knob, and carry it through the full gauntlet to a Stable
// verifier-correctness verdict with a minimized reproducer.
func TestOracleCatchesArmedBug(t *testing.T) {
	env := Env{
		Version: kernel.BPFNext, Sanitize: true, Oracle: true,
		Bugs: bugs.Of(bugs.Bug3KfuncBacktrack),
	}
	c := core.NewCampaign(core.CampaignConfig{
		Source: witnessSource{}, Version: env.Version,
		OverrideBugs: env.Bugs, Sanitize: env.Sanitize, Oracle: env.Oracle,
		Seed: 3, NoMinimize: true,
	})
	st, err := c.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	wantKey := core.BugKey{
		ID: bugs.Bug3KfuncBacktrack, Indicator: kernel.IndicatorSoundness, Kind: "soundness:tnum",
	}
	rec := st.Bugs[wantKey]
	if rec == nil {
		t.Fatalf("campaign missed the soundness finding; bugs = %v, anomalies = %v",
			st.Bugs, st.OtherAnomalies)
	}
	if st.SoundnessViolations == 0 {
		t.Error("no soundness violations counted")
	}

	store, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	g := New(Config{}, store)
	added, err := g.Ingest(st, env)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("gauntlet ingested nothing")
	}
	sum, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	var found *Finding
	for _, f := range sum.Findings {
		if f.Raw.Key == wantKey {
			found = f
		}
	}
	if found == nil {
		t.Fatalf("soundness finding absent from gauntlet summary")
	}
	if found.Verdict != Stable {
		t.Fatalf("verdict = %v (%s), want Stable", found.Verdict, found.Note)
	}
	if found.Class != ClassVerifierCorrectness {
		t.Errorf("class = %v, want verifier-correctness", found.Class)
	}
	if found.Minimized == nil {
		t.Errorf("no minimized reproducer (%s)", found.MinimizeNote)
	} else if n := len(found.Minimized.Insns); n > len(rec.Program.Insns) {
		t.Errorf("minimized reproducer grew: %d > %d insns", n, len(rec.Program.Insns))
	}
	// The witness needs kfuncs and the armed knob: it must not reproduce
	// everywhere, and the matrix must record that honestly.
	for _, cell := range found.Matrix {
		if cell.Version == kernel.V515 && cell.Reproduced {
			t.Errorf("v5.15 (no kfuncs) claims reproduction: %+v", cell)
		}
	}
}
