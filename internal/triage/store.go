package triage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/checkpoint"
)

// Store is the crash-consistent finding store: one checkpoint-enveloped
// file per finding, rewritten (atomically, via the checkpoint package's
// temp→fsync→rename protocol) after every gauntlet stage transition.
// A crash at any point leaves each finding either at its previous stage
// or its new one, never torn — so a resumed process continues the
// gauntlet mid-finding instead of redoing or dropping work.
//
// An empty dir keeps the store memory-only (tests, one-shot runs).
type Store struct {
	dir      string
	findings map[string]*Finding
	damaged  []string
}

// filePrefix/fileSuffix frame finding filenames; the suffix filter also
// keeps Open from reading the checkpoint package's ".tmp" staging files
// a crash may have left behind.
const (
	filePrefix = "finding-"
	fileSuffix = ".ckpt"
)

// Open loads every finding persisted under dir (creating it if needed).
// Corrupt or torn files are recorded as damaged and skipped — a damaged
// finding must surface in reports, not abort the campaign's triage.
func Open(dir string) (*Store, error) {
	s := &Store{findings: make(map[string]*Finding)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("triage: store: %w", err)
	}
	s.dir = dir
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("triage: store: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		var f Finding
		if err := checkpoint.Load(filepath.Join(dir, name), &f); err != nil {
			if errors.Is(err, checkpoint.ErrCorrupt) {
				s.damaged = append(s.damaged, name)
				continue
			}
			return nil, fmt.Errorf("triage: store: %w", err)
		}
		s.findings[f.Key()] = &f
	}
	sort.Strings(s.damaged)
	return s, nil
}

// Dir returns the backing directory ("" when memory-only).
func (s *Store) Dir() string { return s.dir }

// Put persists f (disk first, then memory — a failed write leaves the
// in-memory view consistent with what a restarted process would load).
func (s *Store) Put(f *Finding) error {
	if s.dir != "" {
		path := filepath.Join(s.dir, filePrefix+f.Key()+fileSuffix)
		if err := checkpoint.Save(path, f); err != nil {
			return fmt.Errorf("triage: store %s: %w", f.Key(), err)
		}
	}
	s.findings[f.Key()] = f
	return nil
}

// Get returns the finding stored under key, or nil.
func (s *Store) Get(key string) *Finding { return s.findings[key] }

// Has reports whether a finding is stored under key.
func (s *Store) Has(key string) bool { return s.findings[key] != nil }

// Len returns the number of stored findings.
func (s *Store) Len() int { return len(s.findings) }

// Sorted returns the findings in stable (key) order, so gauntlet runs
// process them deterministically.
func (s *Store) Sorted() []*Finding {
	keys := make([]string, 0, len(s.findings))
	for k := range s.findings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Finding, 0, len(keys))
	for _, k := range keys {
		out = append(out, s.findings[k])
	}
	return out
}

// Damaged returns the filenames Open rejected as corrupt.
func (s *Store) Damaged() []string { return append([]string(nil), s.damaged...) }
