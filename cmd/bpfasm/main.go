// Command bpfasm assembles, disassembles, and verifies eBPF programs.
//
// Usage:
//
//	bpfasm [-asm|-hex] [-emit] [-verify] [-version bpf-next] [-type socket_filter] [file]
//
// By default the input is a little-endian encoded program (8 bytes per
// slot) read from the file argument or stdin, and the output is its
// disassembly. With -hex the input is hex text; with -asm the input is
// assembly text (the disassembler's dialect) which is first assembled.
// With -emit the encoded program is printed as hex. With -verify the
// program is checked by the verifier model and the decision printed.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/kernel"
)

func main() {
	var (
		verify   = flag.Bool("verify", false, "run the program through the verifier model")
		hexIn    = flag.Bool("hex", false, "input is hex text rather than raw bytes")
		asmIn    = flag.Bool("asm", false, "input is assembly text")
		emit     = flag.Bool("emit", false, "print the encoded program as hex")
		version  = flag.String("version", "bpf-next", "kernel version for -verify")
		progType = flag.String("type", "socket_filter", "program type: socket_filter, kprobe, xdp, ...")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	raw, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	var prog *isa.Program
	if *asmIn {
		prog, err = asm.Assemble(string(raw))
		if err != nil {
			fatal(err)
		}
	} else {
		if *hexIn {
			clean := strings.Map(func(r rune) rune {
				if strings.ContainsRune("0123456789abcdefABCDEF", r) {
					return r
				}
				return -1
			}, string(raw))
			raw, err = hex.DecodeString(clean)
			if err != nil {
				fatal(fmt.Errorf("bad hex input: %w", err))
			}
		}
		prog, err = isa.DecodeProgram(raw)
		if err != nil {
			fatal(err)
		}
	}
	prog.Type = parseProgType(*progType)
	fmt.Print(prog.String())
	if *emit {
		fmt.Printf("%s%s%s", "\n", hex.EncodeToString(prog.Encode()), "\n")
	}

	if !*verify {
		return
	}
	var v kernel.Version
	switch *version {
	case "v5.15":
		v = kernel.V515
	case "v6.1":
		v = kernel.V61
	default:
		v = kernel.BPFNext
	}
	k := kernel.New(kernel.Config{Version: v})
	prog.GPLCompatible = true
	lp, err := k.LoadProgram(prog)
	if err != nil {
		fmt.Printf("\nverifier: REJECTED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nverifier: ACCEPTED (%d insns processed, %d states)\n",
		lp.Res.InsnProcessed, lp.Res.TotalStates)
}

func parseProgType(s string) isa.ProgramType {
	for _, t := range isa.AllProgramTypes {
		if t.String() == s {
			return t
		}
	}
	return isa.ProgTypeSocketFilter
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bpfasm: %v\n", err)
	os.Exit(1)
}
