//go:build race

package main

// raceEnabled lets the e2e smoke test skip under the race detector: its
// in-process reference campaign is hundreds of thousands of simulated
// iterations (~30x slower with the detector), and the subprocess side is
// compiled without instrumentation anyway. The dedicated CI step runs it
// uninstrumented; the orchestrator package's in-process tests keep the
// coordinator/worker paths race-checked.
const raceEnabled = true
