// Command bvfd is the fuzzing-as-a-service coordinator: a campaign
// lifecycle manager that serves leased work units from any number of
// concurrent campaigns to bvf -worker processes over a small HTTP+JSON
// control plane.
//
// Usage:
//
//	bvfd [-addr HOST:PORT] [-state-dir DIR] [-lease-ttl D] [-serve]
//	     [-auth SPEC] [-max-active N] [-max-inflight N] [-retry-after D]
//	     [-version bpf-next|v6.1|v5.15] [-iters N] [-seed N] [-units N]
//	     [-tool bvf|syzkaller|buzzer|buzzer-random] [-nosanitize]
//	     [-oracle] [-sync-every N] [-triage]
//
// Two modes:
//
//   - One-shot (default): the spec flags describe a single campaign that
//     is submitted at startup; bvfd exits when it completes, after
//     printing the merged statistics. With -state-dir, a restarted bvfd
//     resumes the persisted campaigns instead of submitting a new one.
//   - Service (-serve): bvfd runs until signaled; campaigns are
//     submitted, listed, stopped, and drained over the control plane
//     (see bvf -submit and friends).
//
// Units are leased with a TTL kept alive by worker heartbeats; a worker
// that dies simply stops heartbeating and its unit is re-leased with its
// full iteration quota. Lease fencing tokens carry the coordinator
// incarnation, which -state-dir persists across restarts.
//
// SIGTERM/SIGINT triggers a graceful drain: no new leases are granted,
// in-flight units complete (or their leases expire), every campaign's
// lease table is checkpointed, and bvfd exits cleanly. Campaign
// lifecycle states survive: a restarted bvfd resumes them.
//
// -auth enables admission control. Its value is a comma-separated list
// of client entries "name=token[:maxcampaigns[:maxiters]]"; submissions
// must then carry a listed token, each client is bounded to its
// concurrent-campaign quota (excess is shed with 429 + Retry-After), and
// a campaign whose budget exceeds the client's per-campaign iteration
// cap is rejected outright.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/triage"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr     = flag.String("addr", "127.0.0.1:8377", "control-plane listen address")
		stateDir = flag.String("state-dir", "", "root directory for crash-safe coordinator state (empty: in-memory)")
		leaseTTL = flag.Duration("lease-ttl", 15*time.Second, "lease expiry without a heartbeat")
		serve    = flag.Bool("serve", false, "run as a long-lived service (campaigns are submitted over the control plane)")

		authSpec    = flag.String("auth", "", "admission control: comma-separated name=token[:maxcampaigns[:maxiters]] client entries (empty: open access)")
		maxActive   = flag.Int("max-active", 0, "concurrently running campaigns; excess queue as pending (0: unlimited)")
		maxInflight = flag.Int("max-inflight", 0, "concurrent lease/submit requests before shedding with 429 (0: unlimited)")
		retryAfter  = flag.Duration("retry-after", 0, "Retry-After hint attached to shed (429) responses (0: derived)")

		version   = flag.String("version", "bpf-next", "kernel version: v5.15, v6.1 or bpf-next")
		iters     = flag.Int("iters", 100000, "campaign-wide iteration budget")
		seed      = flag.Int64("seed", 1, "campaign seed")
		units     = flag.Int("units", 8, "work units (shards of the equivalent single-process campaign)")
		tool      = flag.String("tool", "bvf", "generator: bvf, syzkaller, buzzer, buzzer-random")
		noSan     = flag.Bool("nosanitize", false, "disable the BVF sanitation patches")
		oracle    = flag.Bool("oracle", false, "arm the abstract-state soundness oracle on every worker")
		syncEvery = flag.Int("sync-every", 1024, "worker round length in iterations (bounds abandon latency)")

		doTriage = flag.Bool("triage", false, "run the validation gauntlet over each campaign's findings before exiting (one-shot mode)")
		verbose  = flag.Bool("v", false, "log every lease, heartbeat rejection, lifecycle transition, and unit completion")
	)
	flag.Parse()

	auth, err := parseAuth(*authSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvfd: %v\n", err)
		return 1
	}
	logf := func(format string, args ...any) {
		if *verbose {
			fmt.Fprintf(os.Stderr, "bvfd: "+format+"\n", args...)
		}
	}
	mgr, err := orchestrator.NewManager(orchestrator.ManagerConfig{
		StateDir:     *stateDir,
		LeaseTTL:     *leaseTTL,
		Auth:         auth,
		MaxActive:    *maxActive,
		MaxInflight:  *maxInflight,
		RetryAfter:   *retryAfter,
		ExitWhenIdle: !*serve,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvfd: %v\n", err)
		return 1
	}

	// One-shot mode submits the flag-described campaign — unless the
	// state dir restored previous campaigns, in which case this run
	// resumes them (a restart must not duplicate the campaign).
	if !*serve {
		restored, err := mgr.List(orchestrator.ListRequest{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bvfd: %v\n", err)
			return 1
		}
		if len(restored.Campaigns) == 0 {
			spec := orchestrator.CampaignSpec{
				Tool:       *tool,
				Version:    *version,
				Sanitize:   !*noSan,
				Oracle:     *oracle,
				Seed:       *seed,
				TotalIters: *iters,
				Units:      *units,
				SyncEvery:  *syncEvery,
			}
			if _, err := mgr.Submit(orchestrator.SubmitRequest{Spec: spec}); err != nil {
				fmt.Fprintf(os.Stderr, "bvfd: %v\n", err)
				return 1
			}
		} else {
			fmt.Printf("bvfd: resuming %d persisted campaign(s) from %s\n", len(restored.Campaigns), *stateDir)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvfd: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: orchestrator.NewServer(mgr)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	mode := "one-shot"
	if *serve {
		mode = "service"
	}
	fmt.Printf("bvfd: %s coordinator on %s (lease TTL %s, state %q)\n", mode, ln.Addr(), *leaseTTL, *stateDir)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	start := time.Now()
	pollInterval := *leaseTTL / 4

	select {
	case <-mgr.Done():
	case sig := <-sigs:
		// Graceful drain: stop granting leases, let in-flight units
		// complete (or expire), checkpoint everything, exit cleanly.
		n := mgr.Drain()
		fmt.Fprintf(os.Stderr, "bvfd: %v: draining %d active campaign(s)\n", sig, n)
		deadline := time.Now().Add(2 * *leaseTTL)
		for !mgr.Quiesced() && time.Now().Before(deadline) {
			time.Sleep(100 * time.Millisecond)
		}
		mgr.CheckpointAll()
		// Answer a few more polls so every waiting worker's next lease
		// call sees StatusDrain and exits cleanly.
		grace := 2 * pollInterval
		if grace < time.Second {
			grace = time.Second
		}
		time.Sleep(grace)
		_ = srv.Close()
		fmt.Fprintf(os.Stderr, "bvfd: drained; state checkpointed, exiting\n")
		printCampaigns(mgr)
		return 0
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "bvfd: serve: %v\n", err)
		return 1
	}
	elapsed := time.Since(start)
	// Keep answering for a couple of poll intervals so every waiting
	// worker's next lease call sees StatusDone and exits cleanly,
	// instead of dying on a refused connection.
	grace := 2 * pollInterval
	if grace < time.Second {
		grace = time.Second
	}
	time.Sleep(grace)
	_ = srv.Close()

	fmt.Printf("\nall campaigns complete in %s\n", elapsed.Round(time.Millisecond))
	printCampaigns(mgr)

	if *doTriage {
		list, _ := mgr.List(orchestrator.ListRequest{})
		for _, info := range list.Campaigns {
			store := mgr.Store(info.ID)
			if store == nil || store.Len() == 0 {
				continue
			}
			fmt.Printf("\n[%s] validating %d finding(s) through the gauntlet...\n\n", info.ID, store.Len())
			g := triage.New(triage.Config{}, store)
			sum, gerr := g.Run()
			sum.Print(os.Stdout)
			if gerr != nil {
				fmt.Fprintf(os.Stderr, "bvfd: triage %s: %v\n", info.ID, gerr)
				return 1
			}
		}
	}
	return 0
}

// printCampaigns renders every campaign's final summary.
func printCampaigns(mgr *orchestrator.Manager) {
	list, err := mgr.List(orchestrator.ListRequest{})
	if err != nil {
		return
	}
	for _, info := range list.Campaigns {
		fmt.Printf("\n[%s] %s owner=%s tool=%s units=%d/%d", info.ID, info.State, info.Owner, info.Spec.Tool, info.UnitsDone, info.Units)
		if info.Stopped {
			fmt.Printf(" (stopped)")
		}
		fmt.Println()
		if info.Failure != "" {
			fmt.Printf("  failure: %s\n", info.Failure)
			continue
		}
		st := mgr.MergedStats(info.ID)
		if st == nil {
			continue
		}
		fmt.Printf("  iterations:       %d\n", st.Iterations)
		fmt.Printf("  accepted:         %d (%.1f%%)\n", st.Accepted, 100*st.AcceptanceRate())
		fmt.Printf("  verifier coverage:%d branches\n", st.Coverage.Count())
		if cs, err := mgr.Status(orchestrator.StatusRequest{Campaign: info.ID}); err == nil {
			fmt.Printf("  refunded leases:  %d\n", cs.RefundedLeases)
		}
		fmt.Printf("  bugs found:       %d (%d verifier correctness, %d manifestations)\n",
			len(st.BugIDs()), st.VerifierBugsFound(), len(st.Bugs))
		var recs []*core.BugRecord
		for _, rec := range st.Bugs {
			recs = append(recs, rec)
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].FoundAt < recs[j].FoundAt })
		for _, rec := range recs {
			fmt.Printf("    [iter %7d] %-30s indicator%d  %s\n", rec.FoundAt, rec.ID, rec.Indicator, rec.Kind)
		}
	}
}

// parseAuth turns the -auth flag value into an AuthTable. Each comma-
// separated entry is "name=token[:maxcampaigns[:maxiters]]".
func parseAuth(spec string) (*orchestrator.AuthTable, error) {
	if spec == "" {
		return nil, nil
	}
	var quotas []orchestrator.ClientQuota
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("bad -auth entry %q: want name=token[:maxcampaigns[:maxiters]]", entry)
		}
		parts := strings.Split(rest, ":")
		q := orchestrator.ClientQuota{Name: name, Token: parts[0]}
		if len(parts) > 1 && parts[1] != "" {
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("bad -auth entry %q: maxcampaigns: %v", entry, err)
			}
			q.MaxCampaigns = n
		}
		if len(parts) > 2 && parts[2] != "" {
			n, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("bad -auth entry %q: maxiters: %v", entry, err)
			}
			q.MaxIters = n
		}
		if len(parts) > 3 {
			return nil, fmt.Errorf("bad -auth entry %q: too many fields", entry)
		}
		quotas = append(quotas, q)
	}
	return orchestrator.NewAuthTable(quotas)
}
