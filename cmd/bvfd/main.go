// Command bvfd is the fuzzing-as-a-service coordinator: it splits one
// campaign into leased work units and serves them to bvf -worker
// processes over a small HTTP+JSON control plane.
//
// Usage:
//
//	bvfd [-addr HOST:PORT] [-version bpf-next|v6.1|v5.15] [-iters N]
//	     [-seed N] [-units N] [-tool bvf|syzkaller|buzzer|buzzer-random]
//	     [-nosanitize] [-oracle] [-sync-every N] [-lease-ttl D]
//	     [-checkpoint FILE] [-findings-dir DIR] [-triage]
//
// Units are leased with a TTL kept alive by worker heartbeats; a worker
// that dies simply stops heartbeating and its unit is re-leased with its
// full iteration quota (results commit only on unit completion, so no
// budget is ever lost). Lease fencing tokens carry the coordinator
// incarnation, which -checkpoint persists across restarts: a restarted
// coordinator resumes the campaign, re-leases unfinished units, and
// rejects any late results from leases it granted in a previous life.
//
// bvfd exits when the campaign completes, after printing the merged
// statistics. With -findings-dir every accepted unit's deduplicated
// findings are ingested into the crash-safe store as they arrive, and
// -triage runs the validation gauntlet over them before exiting.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/triage"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr      = flag.String("addr", "127.0.0.1:8377", "control-plane listen address")
		version   = flag.String("version", "bpf-next", "kernel version: v5.15, v6.1 or bpf-next")
		iters     = flag.Int("iters", 100000, "campaign-wide iteration budget")
		seed      = flag.Int64("seed", 1, "campaign seed")
		units     = flag.Int("units", 8, "work units (shards of the equivalent single-process campaign)")
		tool      = flag.String("tool", "bvf", "generator: bvf, syzkaller, buzzer, buzzer-random")
		noSan     = flag.Bool("nosanitize", false, "disable the BVF sanitation patches")
		oracle    = flag.Bool("oracle", false, "arm the abstract-state soundness oracle on every worker")
		syncEvery = flag.Int("sync-every", 1024, "worker round length in iterations (bounds abandon latency)")
		leaseTTL  = flag.Duration("lease-ttl", 15*time.Second, "lease expiry without a heartbeat")

		ckptPath    = flag.String("checkpoint", "", "lease-table checkpoint for crash-safe coordination")
		findingsDir = flag.String("findings-dir", "", "directory for the shared crash-safe finding store (empty: in-memory)")
		doTriage    = flag.Bool("triage", false, "run the validation gauntlet over the findings after the campaign")
		verbose     = flag.Bool("v", false, "log every lease, heartbeat rejection, and unit completion")
	)
	flag.Parse()

	spec := orchestrator.CampaignSpec{
		Tool:       *tool,
		Version:    *version,
		Sanitize:   !*noSan,
		Oracle:     *oracle,
		Seed:       *seed,
		TotalIters: *iters,
		Units:      *units,
		SyncEvery:  *syncEvery,
	}
	store, err := triage.Open(*findingsDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvfd: findings store: %v\n", err)
		return 1
	}
	if damaged := store.Damaged(); len(damaged) > 0 {
		fmt.Fprintf(os.Stderr, "bvfd: WARNING: skipping %d corrupt finding file(s): %v\n", len(damaged), damaged)
	}
	logf := func(format string, args ...any) {
		if *verbose {
			fmt.Fprintf(os.Stderr, "bvfd: "+format+"\n", args...)
		}
	}
	pollInterval := *leaseTTL / 4
	coord, err := orchestrator.NewCoordinator(orchestrator.CoordinatorConfig{
		Spec:           spec,
		LeaseTTL:       *leaseTTL,
		PollInterval:   pollInterval,
		CheckpointPath: *ckptPath,
		Store:          store,
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvfd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvfd: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: orchestrator.NewServer(coord)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("bvfd: coordinating %s on %s for %d iterations across %d units (seed=%d, lease TTL %s)\n",
		spec.Tool, ln.Addr(), spec.TotalIters, spec.Units, spec.Seed, *leaseTTL)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	start := time.Now()
	select {
	case <-coord.Done():
	case sig := <-sigs:
		// The lease table is already durable (when -checkpoint is set);
		// restarting bvfd resumes the campaign where it stopped.
		fmt.Fprintf(os.Stderr, "bvfd: %v: shutting down with campaign unfinished\n", sig)
		printStatus(coord.Status())
		_ = srv.Close()
		return 1
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "bvfd: serve: %v\n", err)
		return 1
	}
	elapsed := time.Since(start)
	// Drain: keep answering for a couple of poll intervals so every
	// waiting worker's next lease call sees StatusDone and exits cleanly,
	// instead of dying on a refused connection.
	grace := 2 * pollInterval
	if grace < time.Second {
		grace = time.Second
	}
	time.Sleep(grace)
	_ = srv.Close()

	st := coord.Merged()
	fmt.Printf("\ncampaign complete in %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("iterations:       %d\n", st.Iterations)
	fmt.Printf("accepted:         %d (%.1f%%)\n", st.Accepted, 100*st.AcceptanceRate())
	fmt.Printf("verifier coverage:%d branches\n", st.Coverage.Count())
	fmt.Printf("refunded leases:  %d\n", coord.Refunds())
	printStatus(coord.Status())
	fmt.Printf("bugs found:       %d (%d verifier correctness, %d manifestations)\n",
		len(st.BugIDs()), st.VerifierBugsFound(), len(st.Bugs))
	var recs []*core.BugRecord
	for _, rec := range st.Bugs {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].FoundAt < recs[j].FoundAt })
	for _, rec := range recs {
		fmt.Printf("  [iter %7d] %-30s indicator%d  %s\n", rec.FoundAt, rec.ID, rec.Indicator, rec.Kind)
	}
	if damaged := store.Damaged(); len(damaged) > 0 {
		fmt.Printf("\nWARNING: %d corrupt finding file(s) skipped by the store: %v\n", len(damaged), damaged)
	}

	if *doTriage && store.Len() > 0 {
		fmt.Printf("\nvalidating %d finding(s) through the gauntlet...\n\n", store.Len())
		g := triage.New(triage.Config{}, store)
		sum, gerr := g.Run()
		sum.Print(os.Stdout)
		if gerr != nil {
			fmt.Fprintf(os.Stderr, "bvfd: triage: %v\n", gerr)
			return 1
		}
	}
	return 0
}

// printStatus renders the worker fleet summary.
func printStatus(s orchestrator.StatusResponse) {
	fmt.Printf("workers:          %d registered\n", len(s.Workers))
	for _, w := range s.Workers {
		live := "gone"
		if w.Live {
			live = "live"
		}
		fmt.Printf("  %-20s %-4s %d unit(s) completed\n", w.Name, live, w.UnitsDone)
	}
}
