package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/triage"
)

// The e2e campaign: big enough that a unit takes seconds (so SIGKILLing
// a worker mid-lease is not a race), small enough to finish fast.
const (
	e2eIters = 180000
	e2eUnits = 3
	e2eSeed  = 42
	e2eSync  = 1000
)

// syncBuffer is a goroutine-safe capture of a subprocess's output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// buildBinaries compiles bvfd and bvf into a temp dir.
func buildBinaries(t *testing.T) (bvfd, bvf string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"bvfd", "bvf"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = root
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", name, err, msg)
		}
	}
	return filepath.Join(dir, "bvfd"), filepath.Join(dir, "bvf")
}

// TestE2EWorkerKilledMidLease is the full-stack smoke test: a real bvfd
// process coordinates real bvf -worker processes over TCP; one worker is
// SIGKILLed mid-lease; the campaign must still complete its full
// iteration quota with the same deduplicated finding set as an unfaulted
// in-process ParallelCampaign run.
func TestE2EWorkerKilledMidLease(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e smoke test builds binaries and runs a real campaign")
	}
	if raceEnabled {
		t.Skip("reference campaign is too slow under the race detector; CI runs this uninstrumented")
	}
	bvfdBin, bvfBin := buildBinaries(t)

	// Unfaulted single-process reference (SyncEvery = per-shard quota:
	// one round, no cross-shard exchange, shards ≡ units).
	ver, err := orchestrator.ParseVersion("bpf-next")
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewParallelCampaign(core.ParallelConfig{
		CampaignConfig: core.CampaignConfig{
			Source: core.BVFSource(ver.HasKfuncs()), Version: ver,
			Sanitize: true, Seed: e2eSeed, NoMinimize: true,
			Supervision: core.SupervisorConfig{Enabled: true},
		},
		Workers:   e2eUnits,
		SyncEvery: e2eIters / e2eUnits,
	})
	refStats, err := ref.Run(e2eIters)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}

	findingsDir := t.TempDir()
	var coordOut syncBuffer
	coord := exec.Command(bvfdBin,
		"-addr", "127.0.0.1:0",
		"-iters", fmt.Sprint(e2eIters),
		"-units", fmt.Sprint(e2eUnits),
		"-seed", fmt.Sprint(e2eSeed),
		"-sync-every", fmt.Sprint(e2eSync),
		"-lease-ttl", "1s",
		"-findings-dir", findingsDir,
	)
	coord.Stdout = &coordOut
	coord.Stderr = &coordOut
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// The coordinator prints its bound address on startup.
	addrRE := regexp.MustCompile(`on (127\.0\.0\.1:\d+) `)
	var baseURL string
	for deadline := time.Now().Add(15 * time.Second); ; {
		if m := addrRE.FindStringSubmatch(coordOut.String()); m != nil {
			baseURL = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bvfd never reported its address:\n%s", coordOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	status := orchestrator.NewClient(baseURL, "e2e-harness")

	startWorker := func(name string) *exec.Cmd {
		w := exec.Command(bvfBin, "-worker", "-coordinator", baseURL, "-worker-name", name)
		w.Stdout = os.Stderr
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatalf("start worker %s: %v", name, err)
		}
		return w
	}

	// The doomed worker goes first, alone, so it is the one holding a
	// lease when the SIGKILL lands.
	doomed := startWorker("doomed")
	defer doomed.Process.Kill()
	killed := false
	for deadline := time.Now().Add(30 * time.Second); !killed; {
		st, err := status.Status()
		if err == nil {
			for _, u := range st.Units {
				if u.State == "leased" && u.Worker == "doomed" {
					// Mid-lease, microseconds into a multi-second unit.
					if err := doomed.Process.Kill(); err != nil {
						t.Fatalf("SIGKILL doomed worker: %v", err)
					}
					doomed.Wait()
					killed = true
					break
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("doomed worker never held a lease:\n%s", coordOut.String())
		}
		if !killed {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Two survivors finish the campaign, including the refunded unit.
	w1, w2 := startWorker("survivor-1"), startWorker("survivor-2")
	defer w1.Process.Kill()
	defer w2.Process.Kill()

	coordErr := make(chan error, 1)
	go func() { coordErr <- coord.Wait() }()
	select {
	case err := <-coordErr:
		if err != nil {
			t.Fatalf("bvfd exited with %v:\n%s", err, coordOut.String())
		}
	case <-time.After(3 * time.Minute):
		t.Fatalf("campaign never completed:\n%s", coordOut.String())
	}
	if err := w1.Wait(); err != nil {
		t.Errorf("survivor-1: %v", err)
	}
	if err := w2.Wait(); err != nil {
		t.Errorf("survivor-2: %v", err)
	}

	out := coordOut.String()
	// Full quota despite the mid-lease kill.
	if m := regexp.MustCompile(`iterations:\s+(\d+)`).FindStringSubmatch(out); m == nil || m[1] != fmt.Sprint(e2eIters) {
		t.Errorf("iterations line = %v, want %d\n%s", m, e2eIters, out)
	}
	// The kill cost a lease (re-run), never budget.
	if m := regexp.MustCompile(`refunded leases:\s+(\d+)`).FindStringSubmatch(out); m == nil || m[1] == "0" {
		t.Errorf("refunded leases line = %v, want >= 1\n%s", m, out)
	}

	// Bug-for-bug equivalence with the unfaulted reference, including
	// discovery iterations (printed on the global axis both sides).
	bugRE := regexp.MustCompile(`\[iter\s+(\d+)\]\s+(\S+)\s+indicator(\d+)\s+(.+)`)
	got := map[string]bool{}
	for _, m := range bugRE.FindAllStringSubmatch(out, -1) {
		got[fmt.Sprintf("%s|%s|%s|%s", m[1], m[2], m[3], m[4])] = true
	}
	var want []string
	for _, rec := range refStats.Bugs {
		want = append(want, fmt.Sprintf("%d|%s|%d|%v", rec.FoundAt, rec.ID, rec.Indicator, rec.Kind))
	}
	sort.Strings(want)
	for _, w := range want {
		if !got[w] {
			t.Errorf("reference bug %q missing from distributed campaign", w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("distributed campaign reported %d bugs, reference found %d\n%s", len(got), len(want), out)
	}

	// The shared registry holds one finding per deduplicated BugKey.
	store, err := triage.Open(findingsDir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := store.Len(), len(refStats.Bugs); got != want {
		t.Errorf("findings store has %d entries, want %d", got, want)
	}
	if d := store.Damaged(); len(d) != 0 {
		t.Errorf("damaged findings: %v", d)
	}
}
