package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/orchestrator"
	"repro/internal/triage"
)

// The e2e campaign: big enough that a unit takes seconds (so SIGKILLing
// a worker mid-lease is not a race), small enough to finish fast.
const (
	e2eIters = 180000
	e2eUnits = 3
	e2eSeed  = 42
	e2eSync  = 1000
)

// syncBuffer is a goroutine-safe capture of a subprocess's output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// buildBinaries compiles bvfd and bvf into a temp dir.
func buildBinaries(t *testing.T) (bvfd, bvf string) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, name := range []string{"bvfd", "bvf"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = root
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", name, err, msg)
		}
	}
	return filepath.Join(dir, "bvfd"), filepath.Join(dir, "bvf")
}

// TestE2EWorkerKilledMidLease is the full-stack smoke test: a real bvfd
// process coordinates real bvf -worker processes over TCP; one worker is
// SIGKILLed mid-lease; the campaign must still complete its full
// iteration quota with the same deduplicated finding set as an unfaulted
// in-process ParallelCampaign run.
func TestE2EWorkerKilledMidLease(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e smoke test builds binaries and runs a real campaign")
	}
	if raceEnabled {
		t.Skip("reference campaign is too slow under the race detector; CI runs this uninstrumented")
	}
	bvfdBin, bvfBin := buildBinaries(t)

	// Unfaulted single-process reference (SyncEvery = per-shard quota:
	// one round, no cross-shard exchange, shards ≡ units).
	ver, err := orchestrator.ParseVersion("bpf-next")
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewParallelCampaign(core.ParallelConfig{
		CampaignConfig: core.CampaignConfig{
			Source: core.BVFSource(ver.HasKfuncs()), Version: ver,
			Sanitize: true, Seed: e2eSeed, NoMinimize: true,
			Supervision: core.SupervisorConfig{Enabled: true},
		},
		Workers:   e2eUnits,
		SyncEvery: e2eIters / e2eUnits,
	})
	refStats, err := ref.Run(e2eIters)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}

	stateDir := t.TempDir()
	var coordOut syncBuffer
	coord := exec.Command(bvfdBin,
		"-addr", "127.0.0.1:0",
		"-iters", fmt.Sprint(e2eIters),
		"-units", fmt.Sprint(e2eUnits),
		"-seed", fmt.Sprint(e2eSeed),
		"-sync-every", fmt.Sprint(e2eSync),
		"-lease-ttl", "1s",
		"-state-dir", stateDir,
	)
	coord.Stdout = &coordOut
	coord.Stderr = &coordOut
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// The coordinator prints its bound address on startup.
	addrRE := regexp.MustCompile(`on (127\.0\.0\.1:\d+) `)
	var baseURL string
	for deadline := time.Now().Add(15 * time.Second); ; {
		if m := addrRE.FindStringSubmatch(coordOut.String()); m != nil {
			baseURL = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bvfd never reported its address:\n%s", coordOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	status := orchestrator.NewClient(baseURL, "e2e-harness")

	startWorker := func(name string) *exec.Cmd {
		w := exec.Command(bvfBin, "-worker", "-coordinator", baseURL, "-worker-name", name)
		w.Stdout = os.Stderr
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatalf("start worker %s: %v", name, err)
		}
		return w
	}

	// The doomed worker goes first, alone, so it is the one holding a
	// lease when the SIGKILL lands.
	doomed := startWorker("doomed")
	defer doomed.Process.Kill()
	killed := false
	for deadline := time.Now().Add(30 * time.Second); !killed; {
		st, err := status.Status("")
		if err == nil {
			for _, u := range st.Units {
				if u.State == "leased" && u.Worker == "doomed" {
					// Mid-lease, microseconds into a multi-second unit.
					if err := doomed.Process.Kill(); err != nil {
						t.Fatalf("SIGKILL doomed worker: %v", err)
					}
					doomed.Wait()
					killed = true
					break
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("doomed worker never held a lease:\n%s", coordOut.String())
		}
		if !killed {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Two survivors finish the campaign, including the refunded unit.
	w1, w2 := startWorker("survivor-1"), startWorker("survivor-2")
	defer w1.Process.Kill()
	defer w2.Process.Kill()

	coordErr := make(chan error, 1)
	go func() { coordErr <- coord.Wait() }()
	select {
	case err := <-coordErr:
		if err != nil {
			t.Fatalf("bvfd exited with %v:\n%s", err, coordOut.String())
		}
	case <-time.After(3 * time.Minute):
		t.Fatalf("campaign never completed:\n%s", coordOut.String())
	}
	if err := w1.Wait(); err != nil {
		t.Errorf("survivor-1: %v", err)
	}
	if err := w2.Wait(); err != nil {
		t.Errorf("survivor-2: %v", err)
	}

	out := coordOut.String()
	// Full quota despite the mid-lease kill.
	if m := regexp.MustCompile(`iterations:\s+(\d+)`).FindStringSubmatch(out); m == nil || m[1] != fmt.Sprint(e2eIters) {
		t.Errorf("iterations line = %v, want %d\n%s", m, e2eIters, out)
	}
	// The kill cost a lease (re-run), never budget.
	if m := regexp.MustCompile(`refunded leases:\s+(\d+)`).FindStringSubmatch(out); m == nil || m[1] == "0" {
		t.Errorf("refunded leases line = %v, want >= 1\n%s", m, out)
	}

	// Bug-for-bug equivalence with the unfaulted reference, including
	// discovery iterations (printed on the global axis both sides).
	bugRE := regexp.MustCompile(`\[iter\s+(\d+)\]\s+(\S+)\s+indicator(\d+)\s+(.+)`)
	got := map[string]bool{}
	for _, m := range bugRE.FindAllStringSubmatch(out, -1) {
		got[fmt.Sprintf("%s|%s|%s|%s", m[1], m[2], m[3], m[4])] = true
	}
	var want []string
	for _, rec := range refStats.Bugs {
		want = append(want, fmt.Sprintf("%d|%s|%d|%v", rec.FoundAt, rec.ID, rec.Indicator, rec.Kind))
	}
	sort.Strings(want)
	for _, w := range want {
		if !got[w] {
			t.Errorf("reference bug %q missing from distributed campaign", w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("distributed campaign reported %d bugs, reference found %d\n%s", len(got), len(want), out)
	}

	// The shared registry holds one finding per deduplicated BugKey,
	// under the campaign's own corner of the state dir.
	store, err := triage.Open(filepath.Join(stateDir, "c1", "findings"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := store.Len(), len(refStats.Bugs); got != want {
		t.Errorf("findings store has %d entries, want %d", got, want)
	}
	if d := store.Damaged(); len(d) != 0 {
		t.Errorf("damaged findings: %v", d)
	}
}

// refCampaign runs the unfaulted single-process reference a distributed
// campaign must be bit-identical to.
func refCampaign(t *testing.T, seed int64, iters, units int) *core.Stats {
	t.Helper()
	ver, err := orchestrator.ParseVersion("bpf-next")
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewParallelCampaign(core.ParallelConfig{
		CampaignConfig: core.CampaignConfig{
			Source: core.BVFSource(ver.HasKfuncs()), Version: ver,
			Sanitize: true, Seed: seed, NoMinimize: true,
			Supervision: core.SupervisorConfig{Enabled: true},
		},
		Workers:   units,
		SyncEvery: iters / units,
	})
	st, err := ref.Run(iters)
	if err != nil {
		t.Fatalf("reference campaign (seed %d): %v", seed, err)
	}
	return st
}

// waitForAddr extracts the coordinator's bound address from its startup
// banner.
func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	addrRE := regexp.MustCompile(`on (127\.0\.0\.1:\d+) `)
	for deadline := time.Now().Add(15 * time.Second); ; {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("bvfd never reported its address:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// bugSet extracts "<foundAt>|<id>|<indicator>|<kind>" lines from one
// campaign's printed block.
func bugSet(out string) map[string]bool {
	bugRE := regexp.MustCompile(`\[iter\s+(\d+)\]\s+(\S+)\s+indicator(\d+)\s+(.+)`)
	set := map[string]bool{}
	for _, m := range bugRE.FindAllStringSubmatch(out, -1) {
		set[fmt.Sprintf("%s|%s|%s|%s", m[1], m[2], m[3], strings.TrimSpace(m[4]))] = true
	}
	return set
}

// TestE2EDrainChaos is the full-service chaos drill: a bvfd service
// hosts two token-authenticated campaigns submitted over the control
// plane while real workers execute units; one worker is SIGKILLed
// mid-lease, then the coordinator is SIGTERMed mid-campaign and must
// drain and exit 0. A second bvfd resumes both campaigns from the state
// dir, fresh workers finish them, and both must print results identical
// to their unfaulted single-process references.
func TestE2EDrainChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e chaos drill builds binaries and runs real campaigns")
	}
	if raceEnabled {
		t.Skip("reference campaigns are too slow under the race detector; CI runs this uninstrumented")
	}
	bvfdBin, bvfBin := buildBinaries(t)

	const (
		chaosIters = 90000
		chaosUnits = 3
		seed1      = 42
		seed2      = 1337
	)
	ref1 := refCampaign(t, seed1, chaosIters, chaosUnits)
	ref2 := refCampaign(t, seed2, chaosIters, chaosUnits)

	stateDir := t.TempDir()
	startCoord := func(out *syncBuffer, extra ...string) *exec.Cmd {
		t.Helper()
		args := append([]string{
			"-addr", "127.0.0.1:0",
			"-state-dir", stateDir,
			"-lease-ttl", "2s",
		}, extra...)
		c := exec.Command(bvfdBin, args...)
		c.Stdout = out
		c.Stderr = out
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		return c
	}
	startWorker := func(baseURL, name string) *exec.Cmd {
		t.Helper()
		w := exec.Command(bvfBin, "-worker", "-coordinator", baseURL, "-worker-name", name)
		w.Stdout = os.Stderr
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatalf("start worker %s: %v", name, err)
		}
		return w
	}

	// Phase 1: the service, with admission control on.
	var out1 syncBuffer
	coord := startCoord(&out1, "-serve", "-auth", "alice=tok-a")
	defer coord.Process.Kill()
	baseURL := waitForAddr(t, &out1)

	// Two campaigns submitted over the control plane with bvf -submit.
	for _, seed := range []int{seed1, seed2} {
		sub := exec.Command(bvfBin, "-submit",
			"-coordinator", baseURL, "-token", "tok-a",
			"-iters", fmt.Sprint(chaosIters),
			"-workers", fmt.Sprint(chaosUnits),
			"-seed", fmt.Sprint(seed),
		)
		if msg, err := sub.CombinedOutput(); err != nil {
			t.Fatalf("bvf -submit (seed %d): %v\n%s", seed, err, msg)
		}
	}

	doomed := startWorker(baseURL, "doomed")
	defer doomed.Process.Kill()
	w2 := startWorker(baseURL, "steady")
	defer w2.Process.Kill()

	// SIGKILL the doomed worker the moment it holds a lease.
	status := orchestrator.NewClient(baseURL, "e2e-harness")
	killed := false
	for deadline := time.Now().Add(30 * time.Second); !killed; {
		for _, campaign := range []string{"c1", "c2"} {
			st, err := status.Status(campaign)
			if err != nil {
				continue
			}
			for _, u := range st.Units {
				if u.State == "leased" && u.Worker == "doomed" {
					if err := doomed.Process.Kill(); err != nil {
						t.Fatalf("SIGKILL doomed worker: %v", err)
					}
					doomed.Wait()
					killed = true
					break
				}
			}
			if killed {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("doomed worker never held a lease:\n%s", out1.String())
		}
		if !killed {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// SIGTERM the coordinator mid-campaign: it must drain (the steady
	// worker's in-flight unit completes or expires), checkpoint, and
	// exit 0.
	if err := coord.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	coordErr := make(chan error, 1)
	go func() { coordErr <- coord.Wait() }()
	select {
	case err := <-coordErr:
		if err != nil {
			t.Fatalf("SIGTERMed bvfd exited with %v:\n%s", err, out1.String())
		}
	case <-time.After(time.Minute):
		t.Fatalf("bvfd never drained:\n%s", out1.String())
	}
	if !strings.Contains(out1.String(), "draining") {
		t.Errorf("no drain announcement in coordinator output:\n%s", out1.String())
	}
	// The steady worker is dismissed by the drain (or dies with the
	// connection); either way the restart replays anything it lost.
	w2done := make(chan struct{})
	go func() { w2.Wait(); close(w2done) }()
	select {
	case <-w2done:
	case <-time.After(15 * time.Second):
		w2.Process.Kill()
		<-w2done
	}

	// Phase 2: a fresh bvfd resumes both campaigns from the state dir
	// (one-shot mode: no flag campaign is submitted when the registry
	// restored one) and fresh workers finish them.
	var out2 syncBuffer
	coord2 := startCoord(&out2)
	defer coord2.Process.Kill()
	baseURL2 := waitForAddr(t, &out2)
	if !strings.Contains(out2.String(), "resuming 2 persisted campaign(s)") {
		t.Fatalf("restarted bvfd did not resume the registry:\n%s", out2.String())
	}

	s1 := startWorker(baseURL2, "fresh-1")
	defer s1.Process.Kill()
	s2 := startWorker(baseURL2, "fresh-2")
	defer s2.Process.Kill()

	coord2Err := make(chan error, 1)
	go func() { coord2Err <- coord2.Wait() }()
	select {
	case err := <-coord2Err:
		if err != nil {
			t.Fatalf("resumed bvfd exited with %v:\n%s", err, out2.String())
		}
	case <-time.After(3 * time.Minute):
		t.Fatalf("resumed campaigns never completed:\n%s", out2.String())
	}
	if err := s1.Wait(); err != nil {
		t.Errorf("fresh-1: %v", err)
	}
	if err := s2.Wait(); err != nil {
		t.Errorf("fresh-2: %v", err)
	}

	// Both campaigns completed with reference-identical results. The
	// final summary prints one block per campaign; split on the block
	// headers and compare each against its reference.
	out := out2.String()
	headerRE := regexp.MustCompile(`(?m)^\[(c\d)\] (\w+) `)
	headers := headerRE.FindAllStringSubmatchIndex(out, -1)
	blocks := map[string]string{}
	for i, h := range headers {
		end := len(out)
		if i+1 < len(headers) {
			end = headers[i+1][0]
		}
		id := out[h[2]:h[3]]
		if state := out[h[4]:h[5]]; state != "completed" {
			t.Errorf("campaign %s final state = %q, want completed", id, state)
		}
		blocks[id] = out[h[0]:end]
	}
	refs := map[string]*core.Stats{"c1": ref1, "c2": ref2}
	itersRE := regexp.MustCompile(`iterations:\s+(\d+)`)
	for id, ref := range refs {
		block, ok := blocks[id]
		if !ok {
			t.Errorf("no summary block for campaign %s:\n%s", id, out)
			continue
		}
		if m := itersRE.FindStringSubmatch(block); m == nil || m[1] != fmt.Sprint(chaosIters) {
			t.Errorf("campaign %s iterations line = %v, want %d", id, m, chaosIters)
		}
		got := bugSet(block)
		want := map[string]bool{}
		for _, rec := range ref.Bugs {
			want[fmt.Sprintf("%d|%s|%d|%v", rec.FoundAt, rec.ID, rec.Indicator, rec.Kind)] = true
		}
		for b := range want {
			if !got[b] {
				t.Errorf("campaign %s: reference bug %q missing", id, b)
			}
		}
		for b := range got {
			if !want[b] {
				t.Errorf("campaign %s: extra bug %q", id, b)
			}
		}
		store, err := triage.Open(filepath.Join(stateDir, id, "findings"))
		if err != nil {
			t.Fatal(err)
		}
		if gotLen, wantLen := store.Len(), len(ref.Bugs); gotLen != wantLen {
			t.Errorf("campaign %s findings store has %d entries, want %d", id, gotLen, wantLen)
		}
		if d := store.Damaged(); len(d) != 0 {
			t.Errorf("campaign %s damaged findings: %v", id, d)
		}
	}
}
