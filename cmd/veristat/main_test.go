package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/maps"
)

// TestExampleProgramsVerify guards the shipped sample programs: every
// examples/progs/*.s must assemble; all except the deliberate reject_oob
// must pass the verifier on the standard fixture.
func TestExampleProgramsVerify(t *testing.T) {
	paths, err := filepath.Glob("../../examples/progs/*.s")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no sample programs found: %v", err)
	}
	k := kernel.New(kernel.Config{Version: kernel.BPFNext, Sanitize: true})
	fixture := []maps.Spec{
		{Type: maps.Array, KeySize: 4, ValueSize: 64, MaxEntries: 4, Name: "arr"},
		{Type: maps.Hash, KeySize: 8, ValueSize: 48, MaxEntries: 8, Name: "hash"},
		{Type: maps.Queue, ValueSize: 16, MaxEntries: 4, Name: "q"},
		{Type: maps.ProgArray, KeySize: 4, ValueSize: 4, MaxEntries: 2, Name: "jt"},
		{Type: maps.RingBuf, MaxEntries: 64, Name: "rb"},
	}
	for _, spec := range fixture {
		if _, err := k.CreateMap(spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := buildProgram(string(src))
		if err != nil {
			t.Fatalf("%s: assemble: %v", path, err)
		}
		lp, err := k.LoadProgram(prog)
		wantReject := strings.Contains(path, "reject")
		if wantReject {
			if err == nil {
				t.Errorf("%s: expected rejection", path)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: rejected: %v", path, err)
			continue
		}
		// Accepted samples must also run clean.
		if out := k.Run(lp); out.Err != nil {
			t.Errorf("%s: run faulted: %v", path, out.Err)
		}
	}
}

func TestBuildProgramDirectives(t *testing.T) {
	prog, err := buildProgram("; prog_type: kprobe\n; attach: contention_begin\n; nongpl\nr0 = 0\nexit\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Type != isa.ProgTypeKprobe {
		t.Errorf("type = %v", prog.Type)
	}
	if prog.AttachTo != "contention_begin" {
		t.Errorf("attach = %q", prog.AttachTo)
	}
	if prog.GPLCompatible {
		t.Error("nongpl ignored")
	}
}
