// Command veristat batch-verifies assembly programs and prints per-program
// verifier statistics, like the kernel's veristat tool.
//
// Usage:
//
//	veristat [-version bpf-next] [-sanitize] prog1.s prog2.s ...
//
// Each input file is assembly in the repository dialect. Header comment
// directives set program attributes:
//
//	; prog_type: kprobe
//	; attach: contention_begin
//	; nongpl
//
// The standard map fixture is available: fd 3 = array(64), fd 4 =
// hash(8,48), fd 5 = queue(16), fd 6 = prog_array, fd 7 = ringbuf.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/maps"
)

func main() {
	var (
		version  = flag.String("version", "bpf-next", "kernel version")
		sanitize = flag.Bool("sanitize", false, "apply the BVF sanitizer and report footprint")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "veristat: no input files")
		os.Exit(2)
	}

	var v kernel.Version
	switch *version {
	case "v5.15":
		v = kernel.V515
	case "v6.1":
		v = kernel.V61
	default:
		v = kernel.BPFNext
	}

	k := kernel.New(kernel.Config{Version: v, Sanitize: *sanitize})
	fixture := []maps.Spec{
		{Type: maps.Array, KeySize: 4, ValueSize: 64, MaxEntries: 4, Name: "arr"},
		{Type: maps.Hash, KeySize: 8, ValueSize: 48, MaxEntries: 8, Name: "hash"},
		{Type: maps.Queue, ValueSize: 16, MaxEntries: 4, Name: "q"},
		{Type: maps.ProgArray, KeySize: 4, ValueSize: 4, MaxEntries: 2, Name: "jt"},
		{Type: maps.RingBuf, MaxEntries: 64, Name: "rb"},
	}
	for _, spec := range fixture {
		if _, err := k.CreateMap(spec); err != nil {
			fmt.Fprintf(os.Stderr, "veristat: fixture: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%-28s %-10s %-8s %-8s %-8s %-10s\n",
		"Program", "Verdict", "Insns", "States", "Peak", "Footprint")
	exitCode := 0
	for _, path := range flag.Args() {
		name := path
		if i := strings.LastIndex(name, "/"); i >= 0 {
			name = name[i+1:]
		}
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "veristat: %v\n", err)
			exitCode = 1
			continue
		}
		prog, err := buildProgram(string(src))
		if err != nil {
			fmt.Printf("%-28s %-10s %v\n", name, "ASMFAIL", err)
			exitCode = 1
			continue
		}
		lp, err := k.LoadProgram(prog)
		if err != nil {
			msg := err.Error()
			if len(msg) > 60 {
				msg = msg[:60] + "..."
			}
			fmt.Printf("%-28s %-10s %s\n", name, "REJECT", msg)
			continue
		}
		foot := "-"
		if lp.SanStats != nil {
			foot = fmt.Sprintf("%.2fx", lp.SanStats.Footprint())
		}
		fmt.Printf("%-28s %-10s %-8d %-8d %-8d %-10s\n",
			name, "ACCEPT", lp.Res.InsnProcessed, lp.Res.TotalStates, lp.Res.PeakStates, foot)
	}
	os.Exit(exitCode)
}

// buildProgram assembles the source and applies its header directives.
func buildProgram(src string) (*isa.Program, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	prog.Type = isa.ProgTypeSocketFilter
	prog.GPLCompatible = true
	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if !strings.HasPrefix(line, ";") {
			continue
		}
		directive := strings.TrimSpace(strings.TrimPrefix(line, ";"))
		switch {
		case strings.HasPrefix(directive, "prog_type:"):
			name := strings.TrimSpace(strings.TrimPrefix(directive, "prog_type:"))
			for _, t := range isa.AllProgramTypes {
				if t.String() == name {
					prog.Type = t
				}
			}
		case strings.HasPrefix(directive, "attach:"):
			prog.AttachTo = strings.TrimSpace(strings.TrimPrefix(directive, "attach:"))
		case directive == "nongpl":
			prog.GPLCompatible = false
		}
	}
	return prog, nil
}
