// Command bvf runs a BVF fuzzing campaign against the simulated kernel:
// structured program generation, verification, sanitation, execution, and
// correctness-bug detection via the two-indicator oracle.
//
// Usage:
//
//	bvf [-version bpf-next|v6.1|v5.15] [-iters N] [-seed N] [-workers N]
//	    [-tool bvf|syzkaller|buzzer|buzzer-random] [-nosanitize] [-v]
//
// The campaign is sharded across -workers parallel fuzzing instances
// (default: all CPUs), each with its own simulated kernel, RNG and
// corpus; a coordinator merges coverage and exchanges coverage-novel
// programs between shards. Progress is reported on stderr every few
// seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/kernel"
)

func main() {
	var (
		versionFlag = flag.String("version", "bpf-next", "kernel version: v5.15, v6.1 or bpf-next")
		iters       = flag.Int("iters", 100000, "fuzzing iterations")
		seed        = flag.Int64("seed", 1, "campaign seed")
		workers     = flag.Int("workers", runtime.NumCPU(), "parallel campaign shards")
		tool        = flag.String("tool", "bvf", "generator: bvf, syzkaller, buzzer, buzzer-random")
		noSan       = flag.Bool("nosanitize", false, "disable the BVF sanitation patches")
		verbose     = flag.Bool("v", false, "print reproducer programs for each bug")
	)
	flag.Parse()

	var version kernel.Version
	switch *versionFlag {
	case "v5.15":
		version = kernel.V515
	case "v6.1":
		version = kernel.V61
	case "bpf-next":
		version = kernel.BPFNext
	default:
		fmt.Fprintf(os.Stderr, "bvf: unknown version %q\n", *versionFlag)
		os.Exit(2)
	}

	var src core.ProgramSource
	sanitize := !*noSan
	mutate := 0
	switch *tool {
	case "bvf":
		src = core.BVFSource(version.HasKfuncs())
	case "syzkaller":
		src, sanitize = baseline.Syz{}, false
	case "buzzer":
		src, sanitize = baseline.Buzz{Mode: baseline.BuzzALUJmp}, false
	case "buzzer-random":
		src, sanitize, mutate = baseline.Buzz{Mode: baseline.BuzzRandom}, false, -1
	default:
		fmt.Fprintf(os.Stderr, "bvf: unknown tool %q\n", *tool)
		os.Exit(2)
	}

	fmt.Printf("bvf: fuzzing Linux %s with %s for %d iterations (sanitize=%v, seed=%d, workers=%d)\n",
		version, src.Name(), *iters, sanitize, *seed, *workers)
	start := time.Now()
	c := core.NewParallelCampaign(core.ParallelConfig{
		CampaignConfig: core.CampaignConfig{
			Source: src, Version: version, Sanitize: sanitize,
			Seed: *seed, MutateBias: mutate,
		},
		Workers:  *workers,
		Progress: os.Stderr,
	})
	st, err := c.Run(*iters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvf: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("\nelapsed:          %s (%.0f iters/sec)\n",
		elapsed.Round(time.Millisecond), float64(st.Iterations)/elapsed.Seconds())
	fmt.Printf("iterations:       %d\n", st.Iterations)
	fmt.Printf("accepted:         %d (%.1f%%)\n", st.Accepted, 100*st.AcceptanceRate())
	fmt.Printf("verifier coverage:%d branches\n", st.Coverage.Count())
	fmt.Printf("corpus:           %d programs\n", st.CorpusSize)
	fmt.Printf("bugs found:       %d (%d verifier correctness)\n\n", len(st.Bugs), st.VerifierBugsFound())

	var recs []*core.BugRecord
	for _, rec := range st.Bugs {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].FoundAt < recs[j].FoundAt })
	for _, rec := range recs {
		fmt.Printf("  [iter %7d] %-30s indicator%d  %s\n", rec.FoundAt, rec.ID, rec.Indicator, rec.Kind)
		if *verbose {
			fmt.Printf("    %s\n", rec.Err)
			repro := rec.Minimized
			if repro == nil {
				repro = rec.Program
			}
			if repro != nil {
				fmt.Println(indent(repro.String(), "    "))
			}
		}
	}
	if len(st.OtherAnomalies) > 0 {
		fmt.Printf("\nunattributed anomalies: %v\n", st.OtherAnomalies)
	}
}

func indent(s, pre string) string {
	out := pre
	for _, c := range s {
		out += string(c)
		if c == '\n' {
			out += pre
		}
	}
	return out
}
