// Command bvf runs a BVF fuzzing campaign against the simulated kernel:
// structured program generation, verification, sanitation, execution, and
// correctness-bug detection via the two-indicator oracle.
//
// Usage:
//
//	bvf [-version bpf-next|v6.1|v5.15] [-iters N] [-seed N] [-workers N]
//	    [-tool bvf|syzkaller|buzzer|buzzer-random] [-mutate-batch K]
//	    [-nosanitize] [-v]
//	    [-checkpoint FILE] [-checkpoint-every N] [-resume]
//	    [-supervise] [-max-restarts N] [-watchdog D]
//	    [-triage] [-findings-dir DIR] [-oracle] [-cache]
//	    [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//	bvf -worker [-coordinator URL] [-worker-name NAME]
//	bvf -submit [-coordinator URL] [-token T] [campaign flags]
//	bvf -campaigns | -campaign-status ID | -stop-campaign ID | -drain
//	    [-coordinator URL] [-token T]
//
// In -worker mode the process joins a distributed campaign instead of
// running its own: it registers with a bvfd coordinator, leases work
// units (seed + iteration quota), heartbeats while executing them, and
// submits each unit's statistics. The campaign definitions come from the
// coordinator with each lease; the local campaign flags are ignored.
//
// The campaign subcommands manage a multi-campaign bvfd service:
// -submit admits a new campaign built from the local campaign flags
// (-iters, -seed, -workers as the unit count, -tool, ...), -campaigns
// lists the registry, -campaign-status prints one campaign's lease
// table, -stop-campaign drains one campaign to completion with partial
// results, and -drain gracefully shuts down the whole coordinator.
// -token authenticates against a bvfd started with -auth.
//
// The campaign is sharded across -workers parallel fuzzing instances
// (default: all CPUs), each with its own simulated kernel, RNG and
// corpus; a coordinator merges coverage and exchanges coverage-novel
// programs between shards. Progress is reported on stderr every few
// seconds.
//
// Long campaigns are crash-safe: with -checkpoint the coordinator
// atomically snapshots the whole campaign (corpus, coverage, statistics,
// RNG positions) every -checkpoint-every rounds, and -resume continues a
// previous campaign from its snapshot instead of restarting. SIGINT
// stops gracefully — the in-flight round finishes, a final checkpoint is
// written, and the statistics so far are printed. Supervision (on by
// default) contains harness panics as findings, restarts crashed shards
// with a backoff and circuit breaker, and bounds verification/execution
// wall-clock time with -watchdog.
//
// With -triage (on by default) every deduplicated finding passes the
// validation gauntlet after the campaign: deterministic replay,
// cross-version × sanitizer classification, flake quarantine, and
// budget-bounded minimization, with a per-verdict summary at the end.
// -findings-dir persists gauntlet state per finding (crash-consistent,
// like -checkpoint); a resumed run — even one whose fuzzing quota is
// already met — picks up any gauntlet left unfinished by a crash.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/orchestrator"
	"repro/internal/prof"
	"repro/internal/triage"
	"repro/internal/vcache"
)

func main() { os.Exit(run()) }

// run is main with an exit code, so deferred cleanup (profile flushing)
// survives every exit path.
func run() int {
	var (
		versionFlag = flag.String("version", "bpf-next", "kernel version: v5.15, v6.1 or bpf-next")
		iters       = flag.Int("iters", 100000, "fuzzing iterations (total target; resumed runs do the remainder)")
		seed        = flag.Int64("seed", 1, "campaign seed")
		workers     = flag.Int("workers", runtime.NumCPU(), "parallel campaign shards")
		tool        = flag.String("tool", "bvf", "generator: bvf, syzkaller, buzzer, buzzer-random")
		mutateBatch = flag.Int("mutate-batch", 0, "sibling-batch size of the mutation scheduler (0 = default, 1 = classic one-mutant picks)")
		noSan       = flag.Bool("nosanitize", false, "disable the BVF sanitation patches")
		verbose     = flag.Bool("v", false, "print reproducer programs for each bug")

		ckptPath  = flag.String("checkpoint", "", "checkpoint file for crash-safe campaigns")
		ckptEvery = flag.Int("checkpoint-every", 8, "rounds between checkpoints")
		resume    = flag.Bool("resume", false, "resume the campaign from -checkpoint")
		supervise = flag.Bool("supervise", true, "contain harness crashes and restart crashed shards")
		maxRst    = flag.Int("max-restarts", 8, "per-shard restart budget before the shard is retired")
		watchdog  = flag.Duration("watchdog", 2*time.Second, "wall-clock limit per verification/execution (0 disables)")

		doTriage    = flag.Bool("triage", true, "run every finding through the validation gauntlet")
		findingsDir = flag.String("findings-dir", "", "directory for the crash-safe finding store (empty: in-memory)")
		oracleFlag  = flag.Bool("oracle", false, "differentially check abstract verifier state against concrete execution (indicator 3)")
		cacheFlag   = flag.Bool("cache", false, "memoize verifier verdicts in a cross-shard cache (incremental re-verification)")

		workerMode  = flag.Bool("worker", false, "run as an orchestrator worker: lease and execute units from -coordinator")
		coordinator = flag.String("coordinator", "http://127.0.0.1:8377", "bvfd coordinator URL for -worker mode and the campaign subcommands")
		workerName  = flag.String("worker-name", "", "worker identity offered to the coordinator (empty: assigned)")

		token      = flag.String("token", "", "bearer token for coordinator admission control")
		submit     = flag.Bool("submit", false, "submit the campaign described by the local flags to -coordinator and exit")
		listCamps  = flag.Bool("campaigns", false, "list the coordinator's campaigns and exit")
		statusID   = flag.String("campaign-status", "", "print one campaign's lease-table snapshot and exit")
		stopID     = flag.String("stop-campaign", "", "stop a campaign (it completes with partial results) and exit")
		drainCoord = flag.Bool("drain", false, "ask the coordinator to drain (finish in-flight units, checkpoint, exit) and exit")
	)
	profFlags := prof.Register(flag.CommandLine)
	flag.Parse()

	if *workerMode {
		// Worker mode ignores the campaign flags: the campaign spec comes
		// from the coordinator, which is what keeps a fleet consistent.
		return runWorker(*coordinator, *workerName)
	}
	if *submit || *listCamps || *statusID != "" || *stopID != "" || *drainCoord {
		spec := orchestrator.CampaignSpec{
			Tool: *tool, Version: *versionFlag, Sanitize: !*noSan,
			Oracle: *oracleFlag, Seed: *seed, TotalIters: *iters,
			Units: *workers, SyncEvery: 1024,
		}
		return runCampaignOp(campaignOp{
			coordinator: *coordinator, token: *token, spec: spec,
			submit: *submit, list: *listCamps,
			statusID: *statusID, stopID: *stopID, drain: *drainCoord,
		})
	}

	stopProf, perr := profFlags.Start()
	defer stopProf()
	if perr != nil {
		fmt.Fprintf(os.Stderr, "bvf: %v\n", perr)
		return 1
	}

	var version kernel.Version
	switch *versionFlag {
	case "v5.15":
		version = kernel.V515
	case "v6.1":
		version = kernel.V61
	case "bpf-next":
		version = kernel.BPFNext
	default:
		fmt.Fprintf(os.Stderr, "bvf: unknown version %q\n", *versionFlag)
		return 2
	}

	// A resumed campaign must be rebuilt with the snapshot's identity:
	// the snapshot records where a specific (seed, workers) campaign was,
	// and mismatched flags would be rejected by Resume anyway.
	var snap *core.Snapshot
	if *resume {
		if *ckptPath == "" {
			fmt.Fprintln(os.Stderr, "bvf: -resume requires -checkpoint")
			return 2
		}
		var err error
		snap, err = core.LoadSnapshot(*ckptPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bvf: resume: %v\n", err)
			return 1
		}
		*seed = snap.Seed
		*workers = snap.Workers
	}

	var src core.ProgramSource
	sanitize := !*noSan
	mutate := 0
	switch *tool {
	case "bvf":
		src = core.BVFSource(version.HasKfuncs())
	case "syzkaller":
		src, sanitize = baseline.Syz{}, false
	case "buzzer":
		src, sanitize = baseline.Buzz{Mode: baseline.BuzzALUJmp}, false
	case "buzzer-random":
		src, sanitize, mutate = baseline.Buzz{Mode: baseline.BuzzRandom}, false, -1
	default:
		fmt.Fprintf(os.Stderr, "bvf: unknown tool %q\n", *tool)
		return 2
	}

	runIters := *iters
	if snap != nil {
		done := snap.TotalDone()
		if done >= runIters {
			// The fuzzing quota is met, but a crash may have left the
			// triage gauntlet unfinished: run 0 iterations (which merges
			// the restored statistics) and fall through to the gauntlet.
			if !*doTriage {
				fmt.Fprintf(os.Stderr, "bvf: checkpoint already has %d iterations (target %d), nothing to do\n", done, runIters)
				return 0
			}
			runIters = 0
			fmt.Printf("bvf: resuming from %s: %d iterations done, continuing triage\n", *ckptPath, done)
		} else {
			runIters -= done
			fmt.Printf("bvf: resuming from %s: %d iterations done, %d to go\n", *ckptPath, done, runIters)
		}
	}

	fmt.Printf("bvf: fuzzing Linux %s with %s for %d iterations (sanitize=%v, seed=%d, workers=%d, cache=%v)\n",
		version, src.Name(), *iters, sanitize, *seed, *workers, *cacheFlag)
	var sharedCache *vcache.Store
	if *cacheFlag {
		sharedCache = vcache.NewStore(0)
	}
	start := time.Now()
	c := core.NewParallelCampaign(core.ParallelConfig{
		CampaignConfig: core.CampaignConfig{
			Source: src, Version: version, Sanitize: sanitize,
			Seed: *seed, MutateBias: mutate, MutateBatch: *mutateBatch,
			Oracle: *oracleFlag,
			Supervision: core.SupervisorConfig{
				Enabled:       *supervise,
				MaxRestarts:   *maxRst,
				VerifyTimeout: timeoutOrOff(*watchdog),
				ExecTimeout:   timeoutOrOff(*watchdog),
			},
		},
		Workers:         *workers,
		Progress:        os.Stderr,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
		SharedCache:     sharedCache,
	})
	if snap != nil {
		if err := c.Resume(snap); err != nil {
			fmt.Fprintf(os.Stderr, "bvf: resume: %v\n", err)
			return 1
		}
	}

	// Graceful SIGINT/SIGTERM: finish the round, checkpoint, report.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "bvf: stopping after the current round (interrupt again to kill)")
		c.Stop()
		signal.Stop(sigs)
	}()

	st, err := c.Run(runIters)
	stopped := errors.Is(err, core.ErrStopped)
	if err != nil && !stopped {
		// Partial statistics from the healthy shards still get reported
		// below before exiting nonzero.
		fmt.Fprintf(os.Stderr, "bvf: %v\n", err)
		if st == nil {
			return 1
		}
	}
	elapsed := time.Since(start)

	if stopped {
		note := ""
		if *ckptPath != "" {
			note = fmt.Sprintf(" (checkpoint written to %s; resume with -resume)", *ckptPath)
		}
		fmt.Printf("\nstopped by signal after %d iterations%s\n", st.Iterations, note)
	}
	fmt.Printf("\nelapsed:          %s (%.0f iters/sec)\n",
		elapsed.Round(time.Millisecond), float64(st.Iterations)/elapsed.Seconds())
	fmt.Printf("iterations:       %d\n", st.Iterations)
	fmt.Printf("accepted:         %d (%.1f%%)\n", st.Accepted, 100*st.AcceptanceRate())
	fmt.Printf("verifier coverage:%d branches\n", st.Coverage.Count())
	fmt.Printf("corpus:           %d programs\n", st.CorpusSize)
	if st.CrashCount > 0 || st.ShardRestarts > 0 {
		fmt.Printf("harness crashes:  %d contained (%d shard restarts)\n", st.CrashCount, st.ShardRestarts)
	}
	if len(st.WatchdogTrips) > 0 {
		fmt.Printf("watchdog trips:   %v\n", st.WatchdogTrips)
	}
	if st.SoundnessChecks > 0 {
		fmt.Printf("oracle:           %d claims checked, %d violation(s)\n",
			st.SoundnessChecks, st.SoundnessViolations)
	}
	if st.MutateBatches > 0 {
		fmt.Printf("mutation batches: %d (%d siblings, %.1f avg batch)\n",
			st.MutateBatches, st.MutateSiblings,
			float64(st.MutateSiblings)/float64(st.MutateBatches))
	}
	if st.CacheHits+st.CacheMisses > 0 {
		prefixRate := 0.0
		if st.CachePrefixHits+st.CachePrefixMisses > 0 {
			prefixRate = float64(st.CachePrefixHits) / float64(st.CachePrefixHits+st.CachePrefixMisses)
		}
		fmt.Printf("verdict cache:    %d hits / %d lookups (%.1f%%), %d prefix hits (%.1f%%), ~%s inserted\n",
			st.CacheHits, st.CacheHits+st.CacheMisses,
			100*float64(st.CacheHits)/float64(st.CacheHits+st.CacheMisses),
			st.CachePrefixHits, 100*prefixRate, humanBytes(st.CacheInsertedBytes))
	}
	fmt.Printf("bugs found:       %d (%d verifier correctness, %d manifestations)\n\n",
		len(st.BugIDs()), st.VerifierBugsFound(), len(st.Bugs))

	var recs []*core.BugRecord
	for _, rec := range st.Bugs {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].FoundAt < recs[j].FoundAt })
	for _, rec := range recs {
		fmt.Printf("  [iter %7d] %-30s indicator%d  %s\n", rec.FoundAt, rec.ID, rec.Indicator, rec.Kind)
		if *verbose {
			fmt.Printf("    %s\n", rec.Err)
			repro := rec.Minimized
			if repro == nil {
				repro = rec.Program
			}
			if repro != nil {
				fmt.Println(indent(repro.String(), "    "))
			}
		}
	}
	if len(st.OtherAnomalies) > 0 {
		fmt.Printf("\nunattributed anomalies: %v\n", st.OtherAnomalies)
	}
	for _, cr := range st.HarnessCrashes {
		fmt.Printf("\nharness crash (shard %d, iter %d): %s\n", cr.Shard, cr.Iteration, cr.Value)
		if *verbose && cr.Program != nil {
			fmt.Println(indent(cr.Program.String(), "    "))
		}
	}
	if *doTriage && !stopped {
		if terr := runGauntlet(st, version, sanitize, *oracleFlag, *findingsDir); terr != nil {
			note := ""
			if *findingsDir != "" {
				note = fmt.Sprintf(" (finding store %s is crash-safe; rerun with -resume to continue the gauntlet)", *findingsDir)
			}
			fmt.Fprintf(os.Stderr, "bvf: triage: %v%s\n", terr, note)
			return 1
		}
	}
	if err != nil && !stopped {
		return 1
	}
	return 0
}

// runWorker executes leased work units from a bvfd coordinator until the
// campaign completes. SIGINT/SIGTERM abandon the in-flight unit (its
// lease expires and the quota is refunded to the campaign).
func runWorker(coordinator, name string) int {
	w := orchestrator.NewWorker(orchestrator.WorkerConfig{
		Name:   name,
		Client: orchestrator.NewClient(coordinator, name),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "bvf worker: "+format+"\n", args...)
		},
	})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "bvf worker: stopping at the next round edge")
		w.Stop()
		signal.Stop(sigs)
	}()
	if err := w.Run(); err != nil && !errors.Is(err, orchestrator.ErrUnitAbandoned) {
		fmt.Fprintf(os.Stderr, "bvf worker: %v\n", err)
		return 1
	}
	fmt.Printf("bvf worker: done (%d units completed)\n", w.UnitsDone())
	return 0
}

// campaignOp bundles one control-plane subcommand invocation.
type campaignOp struct {
	coordinator, token string
	spec               orchestrator.CampaignSpec
	submit, list       bool
	statusID, stopID   string
	drain              bool
}

// runCampaignOp executes the campaign-management subcommands against a
// bvfd coordinator. The client retries transient failures (including
// 429 shedding, honoring the server's Retry-After hint) and surfaces
// hard rejections — bad token, over-quota budget — immediately.
func runCampaignOp(op campaignOp) int {
	cl := orchestrator.NewClient(op.coordinator, "bvf-cli")
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "bvf: %v\n", err)
		return 1
	}
	switch {
	case op.submit:
		resp, err := cl.Submit(orchestrator.SubmitRequest{Token: op.token, Spec: op.spec})
		if err != nil {
			return fail(err)
		}
		fmt.Printf("campaign %s submitted (%s): %s for %d iterations across %d units\n",
			resp.ID, resp.State, op.spec.Tool, op.spec.TotalIters, op.spec.Units)
	case op.list:
		resp, err := cl.Campaigns(orchestrator.ListRequest{Token: op.token})
		if err != nil {
			return fail(err)
		}
		if resp.Draining {
			fmt.Println("coordinator: DRAINING")
		}
		fmt.Printf("%-6s %-12s %-10s %-10s %8s %12s  %s\n", "ID", "OWNER", "STATE", "TOOL", "UNITS", "ITERS", "NOTES")
		for _, c := range resp.Campaigns {
			notes := ""
			if c.Stopped {
				notes = "stopped"
			}
			if c.Failure != "" {
				notes = "failure: " + c.Failure
			}
			fmt.Printf("%-6s %-12s %-10s %-10s %4d/%-4d %12d  %s\n",
				c.ID, c.Owner, c.State, c.Spec.Tool, c.UnitsDone, c.Units, c.Iterations, notes)
		}
	case op.statusID != "":
		resp, err := cl.Status(op.statusID)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("campaign %s: %s, %d/%d units done, %d iterations merged, %d refunded lease(s)\n",
			resp.Campaign, resp.State, resp.UnitsDone, len(resp.Units), resp.Iterations, resp.RefundedLeases)
		for _, u := range resp.Units {
			fmt.Printf("  unit %2d [%d iters] %-8s %s\n", u.ID, u.Quota, u.State, u.Worker)
		}
		for _, b := range resp.Bugs {
			fmt.Printf("  bug %s\n", b)
		}
	case op.stopID != "":
		resp, err := cl.StopCampaign(orchestrator.StopRequest{Token: op.token, ID: op.stopID})
		if err != nil {
			return fail(err)
		}
		fmt.Printf("campaign %s: %s\n", resp.ID, resp.State)
	case op.drain:
		resp, err := cl.Drain(orchestrator.DrainRequest{Token: op.token})
		if err != nil {
			return fail(err)
		}
		fmt.Printf("coordinator draining %d active campaign(s)\n", resp.Campaigns)
	}
	return 0
}

// runGauntlet validates the campaign's findings: replay, cross-config
// classification, quarantine, minimization — then prints the verdicts.
func runGauntlet(st *core.Stats, version kernel.Version, sanitize, oracle bool, dir string) error {
	store, err := triage.Open(dir)
	if err != nil {
		return err
	}
	// Files the store had to skip are findings the operator thinks exist
	// but the gauntlet will not validate — say so rather than silently
	// reporting a smaller bug set.
	if damaged := store.Damaged(); len(damaged) > 0 {
		fmt.Printf("\nWARNING: %d corrupt finding file(s) skipped by the store:\n", len(damaged))
		for _, f := range damaged {
			fmt.Printf("  %s\n", f)
		}
	}
	g := triage.New(triage.Config{}, store)
	added, err := g.Ingest(st, triage.Env{Version: version, Sanitize: sanitize, Oracle: oracle})
	if err != nil {
		return err
	}
	if store.Len() == 0 {
		return nil
	}
	fmt.Printf("\nvalidating %d finding(s) (%d new) through the gauntlet...\n\n", store.Len(), added)
	sum, gerr := g.Run()
	sum.Print(os.Stdout)
	return gerr
}

// timeoutOrOff maps the 0 flag value onto the config's explicit
// "disabled" encoding (negative), keeping 0 = "use default" internal.
func timeoutOrOff(d time.Duration) time.Duration {
	if d <= 0 {
		return -1
	}
	return d
}

// humanBytes renders a byte count with a binary unit suffix.
func humanBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func indent(s, pre string) string {
	out := pre
	for _, c := range s {
		out += string(c)
		if c == '\n' {
			out += pre
		}
	}
	return out
}
