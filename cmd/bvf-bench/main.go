// Command bvf-bench regenerates the paper's evaluation tables and figures
// against the simulated kernel.
//
// Usage:
//
//	bvf-bench -exp table2     [-budget N] [-seeds N]
//	bvf-bench -exp fig6       [-budget N] [-repeats N]   (also prints Table 3)
//	bvf-bench -exp acceptance [-budget N]
//	bvf-bench -exp overhead   [-corpus N] [-repeats N]
//	bvf-bench -exp all
//
// Every campaign-driven experiment accepts -workers N to shard each
// campaign's iteration budget across N parallel fuzzing instances, and
// -supervise to run campaigns under the self-healing supervisor (off by
// default: experiment results are bit-identical either way with no
// faults, and unsupervised keeps the watchdog clocks unarmed).
// -minimize-budget bounds each reproducer minimization's wall clock, so
// one pathological reproducer cannot stall a whole benchmark sweep.
//
// bvf-bench -bench-json FILE runs a fixed-seed throughput benchmark
// (instead of an experiment) and writes a machine-readable report —
// iterations/sec, allocations per iteration, per-stage time shares, peak
// verifier worklist — to FILE, for tracking the hot path's performance
// across changes. -cpuprofile/-memprofile/-trace attach the standard Go
// collectors to either mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/prof"
	"repro/internal/vcache"
)

func main() { os.Exit(run()) }

// run is main with an exit code, so deferred cleanup (profile flushing)
// survives every exit path.
func run() int {
	var (
		exp       = flag.String("exp", "all", "experiment: table2, fig6, table3, acceptance, overhead, ablation, all")
		budget    = flag.Int("budget", 0, "iteration budget (0 = per-experiment default)")
		seeds     = flag.Int("seeds", 3, "campaign seeds for table2")
		repeats   = flag.Int("repeats", 3, "repetitions for fig6/overhead")
		corpus    = flag.Int("corpus", 708, "self-test corpus size for overhead")
		workers   = flag.Int("workers", 1, "parallel shards per campaign (1 = the paper's single-instance runs)")
		supervise = flag.Bool("supervise", false, "run experiment campaigns under the self-healing supervisor")
		minBudget = flag.Duration("minimize-budget", core.DefaultMinimizeBudget,
			"wall-clock budget per reproducer minimization (negative disables the bound)")
		benchJSON   = flag.String("bench-json", "", "run the fixed-seed throughput benchmark and write a JSON report to this file")
		oracleFlag  = flag.Bool("oracle", false, "arm the abstract-state soundness oracle in the -bench-json campaign (measures its overhead)")
		cacheFlag   = flag.Bool("cache", true, "memoize verifier verdicts in the -bench-json campaign (the committed baselines are cached)")
		baseline    = flag.String("bench-baseline", "", "committed BENCH_*.json to compare against; >20% iters/sec regression fails the run")
		mutateBatch = flag.Int("mutate-batch", 0, "sibling-batch size of the mutation scheduler (0 = default, 1 = classic one-mutant picks)")
		minHitRate  = flag.Float64("min-hit-rate", 0, "fail the -bench-json run when the whole-program cache hit rate is below this fraction")
	)
	profFlags := prof.Register(flag.CommandLine)
	flag.Parse()

	stopProf, perr := profFlags.Start()
	defer stopProf()
	if perr != nil {
		fmt.Fprintf(os.Stderr, "bvf-bench: %v\n", perr)
		return 1
	}
	experiments.SetCampaignWorkers(*workers)
	if *supervise {
		experiments.SetSupervision(core.SupervisorConfig{Enabled: true})
	}
	if *minBudget != 0 {
		core.DefaultMinimizeBudget = *minBudget
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *budget, *oracleFlag, *cacheFlag, *baseline, *mutateBatch, *minHitRate); err != nil {
			fmt.Fprintf(os.Stderr, "bvf-bench: %v\n", err)
			return 1
		}
		return 0
	}

	pick := func(def int) int {
		if *budget > 0 {
			return *budget
		}
		return def
	}

	runExp := func(name string) {
		switch name {
		case "table2":
			res, err := experiments.Table2(pick(120000), *seeds)
			fail(err)
			res.Print(os.Stdout)
		case "fig6", "table3":
			res, err := experiments.Fig6(pick(40000), *repeats)
			fail(err)
			res.Print(os.Stdout)
		case "acceptance":
			res, err := experiments.Acceptance(pick(20000))
			fail(err)
			res.Print(os.Stdout)
		case "overhead":
			res, err := experiments.Overhead(*corpus, *repeats)
			fail(err)
			res.Print(os.Stdout)
		case "ablation":
			res, err := experiments.Ablation(pick(20000))
			fail(err)
			res.Print(os.Stdout)
			fmt.Println()
			sres, serr := experiments.SanitizerAblation(*corpus)
			fail(serr)
			sres.Print(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "bvf-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{"table2", "fig6", "acceptance", "overhead", "ablation"} {
			runExp(name)
		}
		return 0
	}
	runExp(*exp)
	return 0
}

// BenchReport is the -bench-json output: one fixed-seed campaign's
// throughput and allocation profile, comparable across code changes.
type BenchReport struct {
	Tool          string  `json:"tool"`
	Version       string  `json:"version"`
	Seed          int64   `json:"seed"`
	Iterations    int     `json:"iterations"`
	Seconds       float64 `json:"seconds"`
	ItersPerSec   float64 `json:"iters_per_sec"`
	AllocsPerIter float64 `json:"allocs_per_iter"`
	BytesPerIter  float64 `json:"bytes_per_iter"`
	PeakWorklist  int     `json:"peak_worklist"`
	Accepted      int     `json:"accepted"`
	CoverageSites int     `json:"coverage_sites"`
	Bugs          int     `json:"bugs"`
	// StageSeconds attributes the whole wall clock: the measured pipeline
	// stages plus an explicit "other" residual (campaign loop, curve
	// sampling, kernel recycling), so the values sum to Seconds and
	// cross-report stage comparisons are honest.
	StageSeconds map[string]float64 `json:"stage_seconds"`
	// Oracle fields are zero unless -oracle armed the soundness checker.
	Oracle              bool `json:"oracle"`
	SoundnessChecks     int  `json:"soundness_checks,omitempty"`
	SoundnessViolations int  `json:"soundness_violations,omitempty"`
	// Cache fields are zero unless -cache armed the verdict cache. The
	// two rates are derived (hits/(hits+misses)) so reports are
	// comparable at a glance without recomputing them.
	Cached             bool    `json:"cached"`
	CacheHits          int64   `json:"cache_hits,omitempty"`
	CacheMisses        int64   `json:"cache_misses,omitempty"`
	CacheHitRate       float64 `json:"cache_hit_rate,omitempty"`
	CachePrefixHits    int64   `json:"cache_prefix_hits,omitempty"`
	CachePrefixMisses  int64   `json:"cache_prefix_misses,omitempty"`
	CachePrefixHitRate float64 `json:"cache_prefix_hit_rate,omitempty"`
	// Mutation-scheduler shape: the configured sibling-batch size and
	// the batch/sibling counts the campaign actually recorded.
	MutateBatch    int `json:"mutate_batch"`
	MutateBatches  int `json:"mutate_batches,omitempty"`
	MutateSiblings int `json:"mutate_siblings,omitempty"`
}

// buildReport assembles the BenchReport from one finished campaign. The
// stage map always contains an "other" entry making stage_seconds sum to
// seconds exactly (see TestBenchReportStagesSumToSeconds).
func buildReport(st *core.Stats, elapsed time.Duration, allocs, bytes uint64, oracle, cached bool, batch int) BenchReport {
	rep := BenchReport{
		Tool:          st.Tool,
		Version:       st.Version.String(),
		Seed:          7,
		Iterations:    st.Iterations,
		Seconds:       elapsed.Seconds(),
		ItersPerSec:   float64(st.Iterations) / elapsed.Seconds(),
		AllocsPerIter: float64(allocs) / float64(st.Iterations),
		BytesPerIter:  float64(bytes) / float64(st.Iterations),
		PeakWorklist:  st.PeakWorklist,
		Accepted:      st.Accepted,
		CoverageSites: st.Coverage.Count(),
		Bugs:          len(st.Bugs),
		StageSeconds:  make(map[string]float64, len(st.StageNanos)+1),

		Oracle:              oracle,
		SoundnessChecks:     st.SoundnessChecks,
		SoundnessViolations: st.SoundnessViolations,

		Cached:            cached,
		CacheHits:         st.CacheHits,
		CacheMisses:       st.CacheMisses,
		CachePrefixHits:   st.CachePrefixHits,
		CachePrefixMisses: st.CachePrefixMisses,

		MutateBatch:    batch,
		MutateBatches:  st.MutateBatches,
		MutateSiblings: st.MutateSiblings,
	}
	if lk := rep.CacheHits + rep.CacheMisses; lk > 0 {
		rep.CacheHitRate = float64(rep.CacheHits) / float64(lk)
	}
	if lk := rep.CachePrefixHits + rep.CachePrefixMisses; lk > 0 {
		rep.CachePrefixHitRate = float64(rep.CachePrefixHits) / float64(lk)
	}
	accounted := 0.0
	for stage, ns := range st.StageNanos {
		s := time.Duration(ns).Seconds()
		rep.StageSeconds[stage] = s
		accounted += s
	}
	other := rep.Seconds - accounted
	if other < 0 {
		// Stage clocks can only overshoot the outer wall clock by timer
		// granularity; clamp so the invariant stays exact.
		for stage := range rep.StageSeconds {
			rep.StageSeconds[stage] *= rep.Seconds / accounted
		}
		other = 0
	}
	rep.StageSeconds["other"] = other
	return rep
}

// runBenchJSON runs the fixed-seed throughput benchmark — the golden
// single-shard campaign configuration on seed 7 — and writes the report
// to path. Allocations are measured as the runtime's Mallocs/TotalAlloc
// delta across the campaign, so the number covers the whole pipeline
// (generate, verify, sanitize, execute, triage), not just the verifier.
func runBenchJSON(path string, budget int, oracle, cached bool, baselinePath string, mutateBatch int, minHitRate float64) error {
	iters := budget
	if iters <= 0 {
		iters = 3000
	}
	cfg := core.CampaignConfig{
		Source: core.BVFSource(true), Version: kernel.BPFNext,
		Sanitize: true, Seed: 7, NoMinimize: true, Oracle: oracle,
		MutateBatch: mutateBatch,
	}
	if cached {
		cfg.Cache = vcache.NewStore(0)
	}
	c := core.NewCampaign(cfg)
	var before, after goruntime.MemStats
	goruntime.GC()
	goruntime.ReadMemStats(&before)
	start := time.Now()
	st, err := c.Run(iters)
	elapsed := time.Since(start)
	goruntime.ReadMemStats(&after)
	if err != nil {
		return err
	}
	rep := buildReport(st, elapsed,
		after.Mallocs-before.Mallocs, after.TotalAlloc-before.TotalAlloc,
		oracle, cached, c.MutateBatch())
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: %d iterations in %.2fs  %.0f iters/sec  %.0f allocs/iter  peak worklist %d  -> %s\n",
		rep.Iterations, rep.Seconds, rep.ItersPerSec, rep.AllocsPerIter, rep.PeakWorklist, path)
	if oracle {
		fmt.Printf("bench: oracle checked %d claims, %d violation(s), %.2fs in oracle stage\n",
			rep.SoundnessChecks, rep.SoundnessViolations, rep.StageSeconds["oracle"])
	}
	if cached {
		fmt.Printf("bench: verdict cache %d/%d hits (%.1f%%), prefix %d/%d (%.1f%%), batch %d (%d batches, %d siblings)\n",
			rep.CacheHits, rep.CacheHits+rep.CacheMisses, 100*rep.CacheHitRate,
			rep.CachePrefixHits, rep.CachePrefixHits+rep.CachePrefixMisses, 100*rep.CachePrefixHitRate,
			rep.MutateBatch, rep.MutateBatches, rep.MutateSiblings)
	}
	if minHitRate > 0 && rep.CacheHitRate < minHitRate {
		return fmt.Errorf("bench: whole-program cache hit rate %.1f%% is below the -min-hit-rate floor %.1f%%",
			100*rep.CacheHitRate, 100*minHitRate)
	}
	if baselinePath != "" {
		return checkBaseline(rep, baselinePath)
	}
	return nil
}

// checkBaseline compares a fresh report against a committed one and fails
// when throughput regressed by more than 20% — a smoke gate coarse enough
// to survive CI-runner noise but tight enough to catch a hot path that
// quietly fell off a cliff.
func checkBaseline(rep BenchReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var base BenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench baseline: %s: %w", path, err)
	}
	if base.ItersPerSec <= 0 {
		return fmt.Errorf("bench baseline: %s has no iters_per_sec", path)
	}
	ratio := rep.ItersPerSec / base.ItersPerSec
	fmt.Printf("bench: %.0f iters/sec vs baseline %.0f (%.2fx, %s)\n",
		rep.ItersPerSec, base.ItersPerSec, ratio, path)
	if ratio < 0.8 {
		return fmt.Errorf("bench baseline: throughput regressed to %.2fx of %s (floor 0.80x)", ratio, path)
	}
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvf-bench: %v\n", err)
		os.Exit(1)
	}
}
