// Command bvf-bench regenerates the paper's evaluation tables and figures
// against the simulated kernel.
//
// Usage:
//
//	bvf-bench -exp table2     [-budget N] [-seeds N]
//	bvf-bench -exp fig6       [-budget N] [-repeats N]   (also prints Table 3)
//	bvf-bench -exp acceptance [-budget N]
//	bvf-bench -exp overhead   [-corpus N] [-repeats N]
//	bvf-bench -exp all
//
// Every campaign-driven experiment accepts -workers N to shard each
// campaign's iteration budget across N parallel fuzzing instances, and
// -supervise to run campaigns under the self-healing supervisor (off by
// default: experiment results are bit-identical either way with no
// faults, and unsupervised keeps the watchdog clocks unarmed).
// -minimize-budget bounds each reproducer minimization's wall clock, so
// one pathological reproducer cannot stall a whole benchmark sweep.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table2, fig6, table3, acceptance, overhead, ablation, all")
		budget    = flag.Int("budget", 0, "iteration budget (0 = per-experiment default)")
		seeds     = flag.Int("seeds", 3, "campaign seeds for table2")
		repeats   = flag.Int("repeats", 3, "repetitions for fig6/overhead")
		corpus    = flag.Int("corpus", 708, "self-test corpus size for overhead")
		workers   = flag.Int("workers", 1, "parallel shards per campaign (1 = the paper's single-instance runs)")
		supervise = flag.Bool("supervise", false, "run experiment campaigns under the self-healing supervisor")
		minBudget = flag.Duration("minimize-budget", core.DefaultMinimizeBudget,
			"wall-clock budget per reproducer minimization (negative disables the bound)")
	)
	flag.Parse()
	experiments.SetCampaignWorkers(*workers)
	if *supervise {
		experiments.SetSupervision(core.SupervisorConfig{Enabled: true})
	}
	if *minBudget != 0 {
		core.DefaultMinimizeBudget = *minBudget
	}

	pick := func(def int) int {
		if *budget > 0 {
			return *budget
		}
		return def
	}

	run := func(name string) {
		switch name {
		case "table2":
			res, err := experiments.Table2(pick(120000), *seeds)
			fail(err)
			res.Print(os.Stdout)
		case "fig6", "table3":
			res, err := experiments.Fig6(pick(40000), *repeats)
			fail(err)
			res.Print(os.Stdout)
		case "acceptance":
			res, err := experiments.Acceptance(pick(20000))
			fail(err)
			res.Print(os.Stdout)
		case "overhead":
			res, err := experiments.Overhead(*corpus, *repeats)
			fail(err)
			res.Print(os.Stdout)
		case "ablation":
			res, err := experiments.Ablation(pick(20000))
			fail(err)
			res.Print(os.Stdout)
			fmt.Println()
			sres, serr := experiments.SanitizerAblation(*corpus)
			fail(serr)
			sres.Print(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "bvf-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{"table2", "fig6", "acceptance", "overhead", "ablation"} {
			run(name)
		}
		return
	}
	run(*exp)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "bvf-bench: %v\n", err)
		os.Exit(1)
	}
}
