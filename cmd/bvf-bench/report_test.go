package main

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
)

// TestBenchReportStagesSumToSeconds pins the stage-accounting invariant:
// stage_seconds (including the explicit "other" residual) sums to seconds
// exactly, so per-stage shares in a report are shares of the real wall
// clock, not of an unstated subset.
func TestBenchReportStagesSumToSeconds(t *testing.T) {
	st := core.NewStats("bvf", kernel.BPFNext)
	st.Iterations = 3000
	st.StageNanos["gen"] = int64(40 * time.Millisecond)
	st.StageNanos["verify"] = int64(90 * time.Millisecond)
	st.StageNanos["exec"] = int64(25 * time.Millisecond)
	st.StageNanos["triage"] = int64(10 * time.Millisecond)
	st.StageNanos["cache"] = int64(2 * time.Millisecond)

	rep := buildReport(st, 200*time.Millisecond, 1_000_000, 64_000_000, false, true, 8)

	other, ok := rep.StageSeconds["other"]
	if !ok {
		t.Fatalf("stage_seconds missing the %q residual: %v", "other", rep.StageSeconds)
	}
	if other <= 0 {
		t.Errorf("other residual = %v, want > 0 (stages account for 167ms of 200ms)", other)
	}
	sum := 0.0
	for _, s := range rep.StageSeconds {
		sum += s
	}
	if diff := math.Abs(sum - rep.Seconds); diff > 1e-12 {
		t.Errorf("stage_seconds sum to %v, seconds = %v (diff %g)", sum, rep.Seconds, diff)
	}
}

// Stage clocks can overshoot the outer wall clock by timer granularity;
// the report must clamp rather than emit a negative "other".
func TestBenchReportStageOvershootClamped(t *testing.T) {
	st := core.NewStats("bvf", kernel.BPFNext)
	st.Iterations = 100
	st.StageNanos["gen"] = int64(60 * time.Millisecond)
	st.StageNanos["verify"] = int64(60 * time.Millisecond)

	rep := buildReport(st, 100*time.Millisecond, 1000, 1000, false, false, 1)

	if rep.StageSeconds["other"] != 0 {
		t.Errorf("other = %v, want 0 when stages overshoot", rep.StageSeconds["other"])
	}
	sum := 0.0
	for name, s := range rep.StageSeconds {
		if s < 0 {
			t.Errorf("stage %q is negative: %v", name, s)
		}
		sum += s
	}
	if diff := math.Abs(sum - rep.Seconds); diff > 1e-12 {
		t.Errorf("clamped stage_seconds sum to %v, seconds = %v", sum, rep.Seconds)
	}
}

// The report carries the cache counters straight from Stats so regression
// diffs can tell a cold cache from a disabled one.
func TestBenchReportCacheCounters(t *testing.T) {
	st := core.NewStats("bvf", kernel.BPFNext)
	st.Iterations = 10
	st.CacheHits = 7
	st.CacheMisses = 3
	st.CachePrefixHits = 2
	st.CachePrefixMisses = 1
	st.MutateBatches = 4
	st.MutateSiblings = 32

	rep := buildReport(st, time.Second, 0, 0, false, true, 8)
	if !rep.Cached || rep.CacheHits != 7 || rep.CacheMisses != 3 ||
		rep.CachePrefixHits != 2 || rep.CachePrefixMisses != 1 {
		t.Errorf("cache fields not propagated: %+v", rep)
	}
	if rep.CacheHitRate != 0.7 {
		t.Errorf("cache_hit_rate = %v, want 0.7", rep.CacheHitRate)
	}
	if math.Abs(rep.CachePrefixHitRate-2.0/3.0) > 1e-12 {
		t.Errorf("cache_prefix_hit_rate = %v, want 2/3", rep.CachePrefixHitRate)
	}
	if rep.MutateBatch != 8 || rep.MutateBatches != 4 || rep.MutateSiblings != 32 {
		t.Errorf("mutation-scheduler fields not propagated: %+v", rep)
	}
}
