// Package repro's top-level benchmarks regenerate the paper's evaluation
// artifacts (one benchmark per table/figure). Benchmarks print the
// rendered tables on the first iteration, so
//
//	go test -bench=. -benchmem
//
// both measures the harness and reproduces the evaluation output. Smaller
// default budgets keep `go test -bench` quick; `cmd/bvf-bench` runs the
// full-size versions.
package repro_test

import (
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/kernel"
)

// printOnce gates table output so repeated b.N iterations stay readable.
var printOnce sync.Map

func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

// BenchmarkTable2BugFinding regenerates Table 2: the RQ1 three-tool bug
// hunt on bpf-next.
func BenchmarkTable2BugFinding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(30000, 1)
		if err != nil {
			b.Fatal(err)
		}
		once("table2", func() { res.Print(os.Stdout) })
		if res.Total["BVF"] < 6 {
			b.Fatalf("BVF found only %d bugs", res.Total["BVF"])
		}
	}
}

// BenchmarkFig6Coverage regenerates Figure 6 and Table 3: coverage curves
// for the three tools on the three kernel versions.
func BenchmarkFig6Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(8000, 1)
		if err != nil {
			b.Fatal(err)
		}
		once("fig6", func() { res.Print(os.Stdout) })
	}
}

// BenchmarkAcceptanceRate regenerates the §6.3 acceptance-rate comparison
// (BVF vs Syzkaller vs both Buzzer modes).
func BenchmarkAcceptanceRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Acceptance(6000)
		if err != nil {
			b.Fatal(err)
		}
		once("acceptance", func() { res.Print(os.Stdout) })
	}
}

// BenchmarkSanitationOverhead regenerates the §6.4 measurement: execution
// slowdown and instruction footprint of the sanitizer over the self-test
// corpus.
func BenchmarkSanitationOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Overhead(200, 2)
		if err != nil {
			b.Fatal(err)
		}
		once("overhead", func() { res.Print(os.Stdout) })
	}
}

// BenchmarkAblation regenerates the design-choice ablation from
// DESIGN.md: the §4.1 structure variants and the §4.2 footprint rules.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(6000)
		if err != nil {
			b.Fatal(err)
		}
		sres, serr := experiments.SanitizerAblation(150)
		if serr != nil {
			b.Fatal(serr)
		}
		once("ablation", func() {
			res.Print(os.Stdout)
			sres.Print(os.Stdout)
		})
	}
}

// BenchmarkVerification measures the verifier model's throughput over
// BVF-generated programs (a micro-benchmark supporting the campaign
// numbers; not a paper table).
func BenchmarkVerification(b *testing.B) {
	c := core.NewCampaign(core.CampaignConfig{
		Source: core.BVFSource(true), Version: kernel.BPFNext, Sanitize: true, Seed: 77,
	})
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := c.Run(b.N); err != nil {
		b.Fatal(err)
	}
}
