// Bug #5 replay (paper Figure 2): a kprobe program attached to the
// contention_begin tracepoint calls a helper that acquires a contended
// lock. The contended acquisition fires contention_begin again, which
// re-enters the program, which acquires the lock again — recursion and an
// inconsistent lock state, caught by the runtime locking validator
// (indicator #2).
//
// Run with: go run ./examples/deadlock
package main

import (
	"fmt"
	"log"

	"repro/internal/bugs"
	"repro/internal/helpers"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/maps"
	"repro/internal/trace"
)

func buildProgram(fd int32) *isa.Program {
	return &isa.Program{
		Type:          isa.ProgTypeKprobe,
		GPLCompatible: true,
		AttachTo:      trace.ContentionBegin,
		Name:          "contention_recursion",
		Insns: []isa.Instruction{
			isa.LoadMapFD(isa.R1, fd),
			isa.StoreImm(isa.SizeW, isa.R10, -4, 0), // key
			isa.Mov64Reg(isa.R2, isa.R10),
			isa.Alu64Imm(isa.ALUAdd, isa.R2, -4),
			isa.StoreImm(isa.SizeDW, isa.R10, -16, 7), // value
			isa.Mov64Reg(isa.R3, isa.R10),
			isa.Alu64Imm(isa.ALUAdd, isa.R3, -16),
			isa.Mov64Imm(isa.R4, 0),
			// Hash-map update takes the bucket lock under contention,
			// which fires contention_begin — re-entering this program.
			isa.Call(helpers.MapUpdateElem),
			isa.Mov64Imm(isa.R0, 0),
			isa.Exit(),
		},
	}
}

func main() {
	spec := maps.Spec{Type: maps.Hash, KeySize: 4, ValueSize: 8, MaxEntries: 8, Name: "stats"}

	// The fixed verifier refuses lock-taking helpers on this hook.
	fixed := kernel.New(kernel.Config{Version: kernel.BPFNext, Bugs: bugs.None(), Sanitize: true})
	fd, err := fixed.CreateMap(spec)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fixed.LoadProgram(buildProgram(fd)); err != nil {
		fmt.Printf("fixed verifier: rejected as expected:\n  %v\n\n", err)
	} else {
		log.Fatal("fixed verifier accepted the program")
	}

	// With the missing restriction (Bug #5) the program loads and the
	// Figure 2 recursion unfolds at runtime.
	buggy := kernel.New(kernel.Config{
		Version:  kernel.BPFNext,
		Bugs:     bugs.Of(bugs.Bug5Contention),
		Sanitize: true,
	})
	fd2, err := buggy.CreateMap(spec)
	if err != nil {
		log.Fatal(err)
	}
	prog := buildProgram(fd2)
	fmt.Println("program (attached to contention_begin):")
	fmt.Print(prog)

	lp, err := buggy.LoadProgram(prog)
	if err != nil {
		log.Fatalf("buggy verifier rejected the program: %v", err)
	}
	fmt.Println("\nbuggy verifier: ACCEPTED (missing attach restriction)")

	out := buggy.Run(lp)
	anomaly := kernel.Classify(out.Err)
	if anomaly == nil {
		log.Fatal("no runtime anomaly — oracle failed")
	}
	fmt.Printf("runtime: %v\n", anomaly.Err)
	fmt.Printf("oracle:  indicator #%d (%s)\n", anomaly.Indicator, anomaly.Kind)
	if id := buggy.Triage(anomaly, prog); id != 0 {
		fmt.Printf("triage:  attributed to %v\n", id)
	}
	fmt.Printf("tracepoint fired %d times (recursion)\n", buggy.M.Trace.FireCount(trace.ContentionBegin))
	fmt.Println("\nBug #5 replay OK")
}
