// Bug #1 replay (paper Listing 2 / §6.2): the verifier propagates
// nullness across pointer equality comparisons. PTR_TO_BTF_ID pointers
// are "trusted" — never marked maybe_null — even though they can be null
// at runtime, so comparing a nullable map value against one and marking
// it non-null on the equal edge is wrong: both may be null.
//
// Run with: go run ./examples/nullness
package main

import (
	"fmt"
	"log"

	"repro/internal/bugs"
	"repro/internal/helpers"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/maps"
)

func buildProgram(fd int32) *isa.Program {
	return &isa.Program{
		Type:          isa.ProgTypeRawTracepoint,
		GPLCompatible: true,
		Name:          "nullness_propagation",
		Insns: []isa.Instruction{
			// #0: r6 = ctx->next_task — typed PTR_TO_BTF_ID (trusted,
			// no null check required) but NULL at runtime.
			isa.LoadMem(isa.SizeDW, isa.R6, isa.R1, 8),
			isa.LoadMapFD(isa.R1, fd),
			isa.Mov64Reg(isa.R2, isa.R10),
			isa.Alu64Imm(isa.ALUAdd, isa.R2, -8),
			isa.StoreImm(isa.SizeDW, isa.R10, -8, 0),
			isa.Call(helpers.MapLookupElem), // r0 = map_value_or_null (null: empty map)
			// #6: if r0 != r6 skip. Both are null at runtime, so the
			// equal edge runs; the buggy propagation marks r0 non-null
			// there because r6 is "known non-null".
			isa.JumpReg(isa.JNE, isa.R0, isa.R6, 2),
			// #7: dereference of the "non-null" r0 — a null deref.
			isa.LoadMem(isa.SizeDW, isa.R0, isa.R0, 0),
			isa.JumpA(0),
			isa.Mov64Imm(isa.R0, 0),
			isa.Exit(),
		},
	}
}

func main() {
	spec := maps.Spec{Type: maps.Hash, KeySize: 8, ValueSize: 48, MaxEntries: 4, Name: "values"}

	// The fixed verifier filters PTR_TO_BTF_ID out of the propagation.
	fixed := kernel.New(kernel.Config{Version: kernel.BPFNext, Bugs: bugs.None(), Sanitize: true})
	fd, err := fixed.CreateMap(spec)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fixed.LoadProgram(buildProgram(fd)); err != nil {
		fmt.Printf("fixed verifier: rejected as expected:\n  %v\n\n", err)
	} else {
		log.Fatal("fixed verifier accepted the program")
	}

	// bpf-next with the bug armed (the paper found it there).
	buggy := kernel.New(kernel.Config{
		Version:  kernel.BPFNext,
		Bugs:     bugs.Of(bugs.Bug1NullnessProp),
		Sanitize: true,
	})
	fd2, err := buggy.CreateMap(spec)
	if err != nil {
		log.Fatal(err)
	}
	prog := buildProgram(fd2)
	fmt.Println("program (Listing 2 shape):")
	fmt.Print(prog)

	lp, err := buggy.LoadProgram(prog)
	if err != nil {
		log.Fatalf("buggy verifier rejected the program: %v", err)
	}
	fmt.Println("\nbuggy verifier: ACCEPTED (incorrect nullness propagation)")

	out := buggy.Run(lp)
	anomaly := kernel.Classify(out.Err)
	if anomaly == nil {
		log.Fatal("no runtime anomaly — oracle failed")
	}
	fmt.Printf("runtime: %v\n", anomaly.Err)
	fmt.Printf("oracle:  indicator #%d (%s)\n", anomaly.Indicator, anomaly.Kind)
	if id := buggy.Triage(anomaly, prog); id != 0 {
		fmt.Printf("triage:  attributed to %v\n", id)
	}
	fmt.Println("\nBug #1 replay OK")
}
