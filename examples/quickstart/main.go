// Quickstart: build an eBPF program by hand, create a map, verify the
// program against the simulated kernel, sanitize it, and execute it.
//
// The program counts invocations in an array map:
//
//	r1 = map_fd            ; the counters map
//	r2 = fp - 4             ; key = 0 on the stack
//	*(u32 *)(fp - 4) = 0
//	call map_lookup_elem
//	if r0 == 0 goto exit    ; null check
//	lock *(u64 *)(r0) += 1  ; atomic increment
//	r0 = 0
//	exit
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/helpers"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/maps"
)

func main() {
	// A fully fixed bpf-next kernel with the BVF sanitation patches on.
	k := kernel.New(kernel.Config{Version: kernel.BPFNext, Sanitize: true})

	fd, err := k.CreateMap(maps.Spec{
		Type: maps.Array, KeySize: 4, ValueSize: 8, MaxEntries: 1, Name: "counters",
	})
	if err != nil {
		log.Fatal(err)
	}

	one := int32(1)
	prog := &isa.Program{
		Type:          isa.ProgTypeSocketFilter,
		GPLCompatible: true,
		Name:          "count_invocations",
		Insns: []isa.Instruction{
			isa.LoadMapFD(isa.R1, fd),
			isa.StoreImm(isa.SizeW, isa.R10, -4, 0), // key = 0
			isa.Mov64Reg(isa.R2, isa.R10),
			isa.Alu64Imm(isa.ALUAdd, isa.R2, -4),
			isa.Call(helpers.MapLookupElem),
			isa.JumpImm(isa.JNE, isa.R0, 0, 2), // null check
			isa.Mov64Imm(isa.R0, 0),
			isa.Exit(),
			isa.Mov64Imm(isa.R1, one),
			isa.Atomic(isa.SizeDW, isa.R0, isa.R1, 0, isa.AtomicAdd),
			isa.Mov64Imm(isa.R0, 0),
			isa.Exit(),
		},
	}

	fmt.Println("program:")
	fmt.Print(prog)

	lp, err := k.LoadProgram(prog)
	if err != nil {
		log.Fatalf("verifier rejected the program: %v", err)
	}
	fmt.Printf("\nverifier: accepted (%d insns processed, %d branch states)\n",
		lp.Res.InsnProcessed, lp.Res.TotalStates)
	fmt.Printf("sanitizer: %d memory checks inserted, footprint %.2fx\n",
		lp.SanStats.MemChecks, lp.SanStats.Footprint())

	for i := 0; i < 5; i++ {
		out := k.Run(lp)
		if out.Err != nil {
			log.Fatalf("run %d faulted: %v", i, out.Err)
		}
	}

	// Read the counter back through the map API.
	m := k.MapByFD(fd)
	addr := m.LookupAddr([]byte{0, 0, 0, 0})
	val, _ := k.M.Dom.Load(addr, 8)
	fmt.Printf("\ncounter after 5 runs: %d\n", val)
	if val != 5 {
		log.Fatalf("expected 5, got %d", val)
	}
	fmt.Println("quickstart OK")
}
