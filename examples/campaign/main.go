// Campaign: a compact end-to-end fuzzing session. BVF fuzzes a bpf-next
// kernel with every seeded bug armed, and the example prints the live
// discovery log plus the final statistics — a miniature of the paper's
// two-week deployment.
//
// Run with: go run ./examples/campaign [iterations]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/kernel"
)

func main() {
	// 90k batched-scheduler iterations cost about the wall clock 60k
	// did before sibling batching (~1.5× iteration throughput) and
	// rediscover the full seeded-bug set at this seed.
	iters := 90000
	if len(os.Args) > 1 {
		n, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("bad iteration count %q", os.Args[1])
		}
		iters = n
	}

	fmt.Printf("fuzzing bpf-next with BVF for %d iterations...\n\n", iters)
	c := core.NewCampaign(core.CampaignConfig{
		Source:   core.BVFSource(true),
		Version:  kernel.BPFNext,
		Sanitize: true,
		Seed:     2024,
	})
	st, err := c.Run(iters)
	if err != nil {
		log.Fatal(err)
	}

	var recs []*core.BugRecord
	for _, rec := range st.Bugs {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].FoundAt < recs[j].FoundAt })
	for _, rec := range recs {
		fmt.Printf("[iter %6d] indicator%d  %-30v %s\n", rec.FoundAt, rec.Indicator, rec.ID, rec.Kind)
	}

	fmt.Printf("\nsummary:\n")
	fmt.Printf("  acceptance rate:   %.1f%% (paper: 49%%)\n", 100*st.AcceptanceRate())
	fmt.Printf("  verifier coverage: %d branches\n", st.Coverage.Count())
	fmt.Printf("  corpus:            %d programs\n", st.CorpusSize)
	fmt.Printf("  bugs:              %d found, %d verifier correctness (paper: 11 and 6)\n",
		len(st.Bugs), st.VerifierBugsFound())
}
