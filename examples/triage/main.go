// Triage: the paper's §6.5 workflow, automated. A short fuzzing burst
// finds a bug; the oracle classifies it under one of the two indicators;
// knob-removal re-verification attributes the root cause; and the
// reproducer is minimized into a stable, reportable program — the
// artifact the paper's authors sent to the kernel maintainers.
//
// Run with: go run ./examples/triage
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/kernel"
)

func main() {
	fmt.Println("fuzzing bpf-next until the first verifier correctness bug...")
	c := core.NewCampaign(core.CampaignConfig{
		Source:   core.BVFSource(true),
		Version:  kernel.BPFNext,
		Sanitize: true,
		Seed:     7,
	})
	var found *core.BugRecord
	total := 0
	for found == nil && total < 200000 {
		st, err := c.Run(2000)
		if err != nil {
			log.Fatal(err)
		}
		total += 2000
		var recs []*core.BugRecord
		for _, rec := range st.Bugs {
			if rec.ID.IsVerifierCorrectness() && rec.Minimized != nil {
				recs = append(recs, rec)
			}
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].FoundAt < recs[j].FoundAt })
		if len(recs) > 0 {
			found = recs[0]
		}
	}
	if found == nil {
		log.Fatal("no verifier correctness bug within the budget")
	}

	fmt.Printf("\nfound at iteration %d:\n", found.FoundAt)
	fmt.Printf("  anomaly:    %s (indicator #%d)\n", found.Kind, found.Indicator)
	fmt.Printf("  fault:      %s\n", found.Err)
	fmt.Printf("  triage:     %v (%s)\n", found.ID, found.ID.Component())
	fmt.Printf("  reproducer: %d insns generated -> %d insns minimized\n\n",
		len(found.Program.Insns), len(found.Minimized.Insns))
	fmt.Println("minimized stable reproducer:")
	fmt.Print(found.Minimized)

	// Confirm stability: the minimized program triggers the same bug on
	// a pristine kernel.
	rep := core.NewReproducer(kernel.BPFNext, nil, true, false, found.ID)
	if !rep.Check(found.Minimized) {
		log.Fatal("reproducer is not stable")
	}
	fmt.Println("\nreproducer confirmed stable on a pristine buggy kernel")
	fmt.Println("triage example OK")
}
