// CVE-2022-23222 replay (paper Listing 1): on v5.15-era kernels the
// verifier allowed arithmetic on nullable map-value pointers. In the null
// branch it then believes the register equals zero even though the
// arithmetic shifted it, so the "non-null" branch dereferences a small
// invalid address at runtime.
//
// This example loads the Listing 1 shape into a simulated v5.15 kernel
// (where it verifies) and a bpf-next kernel (where the fix rejects it),
// and shows the BVF sanitizer catching the invalid access at runtime.
//
// Run with: go run ./examples/cve2022_23222
package main

import (
	"fmt"
	"log"

	"repro/internal/helpers"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/maps"
)

func buildProgram(fd int32) *isa.Program {
	return &isa.Program{
		Type:          isa.ProgTypeSocketFilter,
		GPLCompatible: true,
		Name:          "cve_2022_23222",
		Insns: []isa.Instruction{
			isa.LoadMapFD(isa.R1, fd),
			isa.Mov64Reg(isa.R2, isa.R10),
			isa.Alu64Imm(isa.ALUAdd, isa.R2, -8),
			isa.StoreImm(isa.SizeDW, isa.R10, -8, 0),
			isa.Call(helpers.MapLookupElem), // r0 = map_value_or_null
			// #5: ALU on the nullable pointer — the missing check.
			isa.Alu64Imm(isa.ALUAdd, isa.R0, 8),
			// #6: null check *after* the arithmetic. At runtime the
			// register is 0+8=8, never zero, so the "non-null" branch
			// runs; the verifier there believes r0 = map_value+8.
			isa.JumpImm(isa.JNE, isa.R0, 0, 2),
			isa.Mov64Imm(isa.R0, 0),
			isa.Exit(),
			// #9: the invalid access: address 8 at runtime.
			isa.LoadMem(isa.SizeDW, isa.R0, isa.R0, 0),
			isa.Exit(),
		},
	}
}

func main() {
	spec := maps.Spec{Type: maps.Hash, KeySize: 8, ValueSize: 48, MaxEntries: 4, Name: "values"}

	// bpf-next: the fix rejects the program outright.
	fixed := kernel.New(kernel.Config{Version: kernel.BPFNext, Sanitize: true})
	fd, err := fixed.CreateMap(spec)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fixed.LoadProgram(buildProgram(fd)); err != nil {
		fmt.Printf("bpf-next (fixed): rejected as expected:\n  %v\n\n", err)
	} else {
		log.Fatal("bpf-next accepted the CVE program — fix regressed")
	}

	// v5.15: the bug is live; the program loads.
	vuln := kernel.New(kernel.Config{Version: kernel.V515, Sanitize: true})
	fd2, err := vuln.CreateMap(spec)
	if err != nil {
		log.Fatal(err)
	}
	prog := buildProgram(fd2)
	fmt.Println("program (Listing 1 shape):")
	fmt.Print(prog)
	lp, err := vuln.LoadProgram(prog)
	if err != nil {
		log.Fatalf("v5.15 rejected the CVE program: %v", err)
	}
	fmt.Println("\nv5.15: verifier ACCEPTED the unsafe program (the correctness bug)")

	out := vuln.Run(lp)
	anomaly := kernel.Classify(out.Err)
	if anomaly == nil {
		log.Fatal("no runtime anomaly — oracle failed")
	}
	fmt.Printf("runtime: %v\n", anomaly.Err)
	fmt.Printf("oracle:  indicator #%d (%s)\n", anomaly.Indicator, anomaly.Kind)
	if id := vuln.Triage(anomaly, prog); id != 0 {
		fmt.Printf("triage:  attributed to %v\n", id)
	}
	fmt.Println("\nCVE-2022-23222 replay OK")
}
