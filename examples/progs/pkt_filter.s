; Bounds-checked packet read on a socket filter.
	r2 = *(u64 *)(r1 24)	; data
	r3 = *(u64 *)(r1 32)	; data_end
	r4 = r2
	r4 += 14		; eth header
	if r4 > r3 goto drop
	r0 = *(u8 *)(r2 12)	; ethertype hi
	exit
drop:	r0 = 0
	exit
