; A null-checked map counter: the quickstart program in assembly form.
	r1 = map_fd(3)
	*(u32 *)(r10 -4) = 0
	r2 = r10
	r2 += -4
	call #1
	if r0 != 0 goto incr
	r0 = 0
	exit
incr:	r1 = 1
	lock *(u64 *)(r0 +0) += r1
	r0 = 0
	exit
