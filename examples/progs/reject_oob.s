; Deliberately out of bounds: the verifier must reject this one.
	r6 = map_value(fd=3 off=0)
	r0 = *(u64 *)(r6 60)
	exit
