; prog_type: kprobe
; Read the current task's pid through the trusted BTF pointer.
	call #158		; bpf_get_current_task_btf
	r0 = *(u32 *)(r0 8)	; task->pid
	r0 &= 0xffff
	exit
