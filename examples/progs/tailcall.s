; Tail call into the jump table (slot 0 is empty here, so it falls through).
	r2 = map_fd(6)
	r3 = 0
	call #12
	r0 = 0
	exit
